"""Layers of the ISP metropolitan network hierarchy.

The paper (Fig. 1, Table III) models a metropolitan ISP as a three-layer
tree, verified through private conversations with a large national ISP:

* **exchange points** (ExP) -- 345 of them; the leaves users hang off,
* **points of presence** (PoP) -- 9 aggregating the exchange points,
* a single **core router** at the root.

When two peers exchange traffic, the cost of the transfer is determined
by the *lowest common layer* of their attachment points: two users under
the same exchange point meet at :attr:`NetworkLayer.EXCHANGE`; users
under different exchanges but the same PoP meet at
:attr:`NetworkLayer.POP`; anything else within the ISP climbs to
:attr:`NetworkLayer.CORE`.  Traffic to a CDN server leaves the metro tree
entirely (:attr:`NetworkLayer.SERVER`).
"""

from __future__ import annotations

import enum

__all__ = ["NetworkLayer", "P2P_LAYERS"]


class NetworkLayer(enum.IntEnum):
    """Where a transfer is localised, ordered from closest to farthest.

    The integer ordering matters: lower values mean shorter paths, and
    peer matching prefers the lowest layer available
    (``min`` over candidate layers is "closest-first").
    """

    #: Both endpoints under the same exchange point (shortest P2P path).
    EXCHANGE = 1
    #: Same point of presence, different exchange points.
    POP = 2
    #: Same ISP metro network, different PoPs (path crosses the core).
    CORE = 3
    #: Path leaves the metro network towards a content server.
    SERVER = 4

    @property
    def is_peer_layer(self) -> bool:
        """True for layers at which two *peers* can be matched."""
        return self is not NetworkLayer.SERVER

    @property
    def short_name(self) -> str:
        """Compact label used in tables and reports."""
        return _SHORT_NAMES[self]

    @property
    def paper_name(self) -> str:
        """The name used in the paper's Table III."""
        return _PAPER_NAMES[self]


_SHORT_NAMES = {
    NetworkLayer.EXCHANGE: "exp",
    NetworkLayer.POP: "pop",
    NetworkLayer.CORE: "core",
    NetworkLayer.SERVER: "server",
}

_PAPER_NAMES = {
    NetworkLayer.EXCHANGE: "Exchange Point",
    NetworkLayer.POP: "Point of Presence",
    NetworkLayer.CORE: "Core Router",
    NetworkLayer.SERVER: "Content Server",
}

#: The three layers at which peer-to-peer traffic can be localised,
#: ordered closest-first.
P2P_LAYERS = (NetworkLayer.EXCHANGE, NetworkLayer.POP, NetworkLayer.CORE)
