"""Transfer classification and per-transfer energy on the metro tree.

The simulator never routes packets; what it needs from the topology is,
for every transfer, (a) *where the path turns around* (the lowest common
layer of the endpoints) and (b) the energy of pushing the transfer's bits
along that class of path under a given
:class:`~repro.core.energy.EnergyModel`.  This module provides both, plus
the hop-count view that underlies the Valancius parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.topology.layers import NetworkLayer
from repro.topology.nodes import AttachmentPoint, lowest_common_layer

if TYPE_CHECKING:  # imported for annotations only -- keeps the module
    # importable while repro.core.energy itself is mid-import (it needs
    # repro.topology.layers, whose parent package imports this module).
    from repro.core.energy import EnergyModel

__all__ = ["Transfer", "classify_transfer", "transfer_energy_nj", "hop_count"]

#: Hop counts per path class, as used to derive the Valancius parameters
#: (Table IV caption): server paths cross 7 hops; peer paths meeting at
#: the core/PoP/exchange cross 6/4/2.
_HOPS = {
    NetworkLayer.SERVER: 7,
    NetworkLayer.CORE: 6,
    NetworkLayer.POP: 4,
    NetworkLayer.EXCHANGE: 2,
}


@dataclass(frozen=True)
class Transfer:
    """A classified transfer between two endpoints.

    Attributes:
        layer: lowest common layer of the endpoints' attachment points.
        same_isp: whether both endpoints subscribe to the same ISP
            (ISP-friendly swarms guarantee this; ablations may not).
    """

    layer: NetworkLayer
    same_isp: bool

    @property
    def is_local(self) -> bool:
        """True when the path stays inside one metro tree."""
        return self.same_isp and self.layer.is_peer_layer


def classify_transfer(a: AttachmentPoint, b: AttachmentPoint) -> Transfer:
    """Classify a peer-to-peer transfer between two attachment points."""
    return Transfer(layer=lowest_common_layer(a, b), same_isp=a.isp == b.isp)


def hop_count(layer: NetworkLayer) -> int:
    """Network hops crossed by a path of the given class."""
    return _HOPS[layer]


def transfer_energy_nj(
    model: EnergyModel,
    a: AttachmentPoint,
    b: AttachmentPoint,
    num_bits: float,
) -> float:
    """Total energy to move ``num_bits`` between two *peers*.

    Includes both modem traversals and the PUE-inflated network path at
    the endpoints' lowest common layer.  Cross-ISP transfers (which
    ISP-friendly swarms forbid) are charged at the CDN network rate
    ``gamma_cdn`` -- the path leaves both metro trees and transits, so the
    traditional-CDN path cost is the closest published figure (used only
    by the cross-ISP ablation).
    """
    if num_bits < 0:
        raise ValueError(f"num_bits must be >= 0, got {num_bits!r}")
    transfer = classify_transfer(a, b)
    if transfer.layer is NetworkLayer.SERVER:
        gamma = model.gamma_cdn_network
        return num_bits * (model.psi_peer_modem + model.pue * gamma)
    return model.peer_energy_nj(num_bits, transfer.layer)
