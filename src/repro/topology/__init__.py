"""ISP metropolitan network substrate (paper Fig. 1 / Table III).

A regular three-layer tree per ISP (core -> PoPs -> exchange points ->
users), a city bundling several ISPs with market shares, and transfer
classification ("at which layer do two users' paths meet?") with the
corresponding per-transfer energy.
"""

from repro.topology.city import CityNetwork, DEFAULT_ISP_SHARES, default_london
from repro.topology.isp import ISPNetwork, LONDON_EXCHANGES, LONDON_POPS
from repro.topology.layers import NetworkLayer, P2P_LAYERS
from repro.topology.nodes import AttachmentPoint, lowest_common_layer
from repro.topology.routing import Transfer, classify_transfer, hop_count
from repro.topology.routing import transfer_energy_nj

__all__ = [
    "AttachmentPoint",
    "CityNetwork",
    "DEFAULT_ISP_SHARES",
    "ISPNetwork",
    "LONDON_EXCHANGES",
    "LONDON_POPS",
    "NetworkLayer",
    "P2P_LAYERS",
    "Transfer",
    "classify_transfer",
    "default_london",
    "hop_count",
    "lowest_common_layer",
    "transfer_energy_nj",
]
