"""One ISP's metropolitan access network (paper Fig. 1 / Table III).

The tree is regular: ``num_pops`` points of presence under one core
router, with ``num_exchanges`` exchange points distributed over the PoPs
in contiguous blocks (the first ``ceil(E/P)`` exchanges under PoP 0 and
so on).  Users attach uniformly at random to exchange points, which is
exactly the assumption behind the paper's localisation probabilities
``p_layer = 1 / n_layer``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List

from repro.core.localisation import LayerProbabilities
from repro.topology.layers import NetworkLayer
from repro.topology.nodes import (
    AttachmentPoint,
    intern_attachment,
    lowest_common_layer,
)

__all__ = ["ISPNetwork", "LONDON_EXCHANGES", "LONDON_POPS"]

#: Node counts of the large national ISP the paper reports (Table III).
LONDON_EXCHANGES = 345
LONDON_POPS = 9


@dataclass(frozen=True)
class ISPNetwork:
    """A three-layer metropolitan ISP tree.

    Attributes:
        name: ISP identifier used in attachment points and reports.
        num_exchanges: number of exchange points (leaves of the shared
            infrastructure), default the paper's 345.
        num_pops: number of points of presence, default the paper's 9.
    """

    name: str
    num_exchanges: int = LONDON_EXCHANGES
    num_pops: int = LONDON_POPS

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("ISP name must be non-empty")
        if self.num_pops < 1:
            raise ValueError(f"num_pops must be >= 1, got {self.num_pops}")
        if self.num_exchanges < self.num_pops:
            raise ValueError(
                f"num_exchanges ({self.num_exchanges}) must be >= num_pops ({self.num_pops})"
            )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def exchanges_per_pop(self) -> int:
        """Block size of the contiguous exchange -> PoP assignment."""
        return math.ceil(self.num_exchanges / self.num_pops)

    def pop_of_exchange(self, exchange: int) -> int:
        """The PoP aggregating a given exchange point."""
        if not 0 <= exchange < self.num_exchanges:
            raise ValueError(
                f"exchange must be in [0, {self.num_exchanges}), got {exchange}"
            )
        return exchange // self.exchanges_per_pop

    def attachment(self, exchange: int) -> AttachmentPoint:
        """The attachment point for a user behind ``exchange``.

        Interned: every user behind the same exchange shares one
        flyweight instance (see
        :func:`repro.topology.nodes.intern_attachment`), so bulk
        generation stops duplicating identical attachment objects.
        """
        return intern_attachment(
            self.name, self.pop_of_exchange(exchange), exchange
        )

    def sample_attachment(self, rng: random.Random) -> AttachmentPoint:
        """Uniformly sample a user attachment point (paper's assumption)."""
        return self.attachment(rng.randrange(self.num_exchanges))

    def common_layer(self, a: AttachmentPoint, b: AttachmentPoint) -> NetworkLayer:
        """Lowest common layer of two of *this* ISP's subscribers."""
        for point in (a, b):
            if point.isp != self.name:
                raise ValueError(
                    f"attachment point {point!r} does not belong to ISP {self.name!r}"
                )
        return lowest_common_layer(a, b)

    # ------------------------------------------------------------------
    # Localisation probabilities (Table III)
    # ------------------------------------------------------------------

    def layer_probabilities(self) -> LayerProbabilities:
        """The ``p_layer = 1/n_layer`` probabilities for this tree."""
        return LayerProbabilities.from_counts(
            exchanges=self.num_exchanges, pops=self.num_pops, cores=1
        )

    def localisation_table(self) -> List[Dict[str, object]]:
        """Rows of the paper's Table III for this ISP."""
        probs = self.layer_probabilities()
        return [
            {
                "layer": NetworkLayer.EXCHANGE.paper_name,
                "count": self.num_exchanges,
                "probability": probs.exchange,
            },
            {
                "layer": NetworkLayer.POP.paper_name,
                "count": self.num_pops,
                "probability": probs.pop,
            },
            {
                "layer": NetworkLayer.CORE.paper_name,
                "count": 1,
                "probability": probs.core,
            },
        ]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_networkx(self):
        """Export the tree as a ``networkx.Graph`` (optional dependency).

        Nodes carry a ``layer`` attribute; edges connect core -> PoPs ->
        exchange points.  Useful for visual inspection, not used by the
        simulator (the regular structure makes explicit graphs
        unnecessary).
        """
        import networkx as nx

        graph = nx.Graph()
        core = f"{self.name}/core"
        graph.add_node(core, layer=str(NetworkLayer.CORE))
        for pop in range(self.num_pops):
            pop_node = f"{self.name}/pop{pop}"
            graph.add_node(pop_node, layer=str(NetworkLayer.POP))
            graph.add_edge(core, pop_node)
        for exchange in range(self.num_exchanges):
            exp_node = f"{self.name}/exp{exchange}"
            graph.add_node(exp_node, layer=str(NetworkLayer.EXCHANGE))
            graph.add_edge(f"{self.name}/pop{self.pop_of_exchange(exchange)}", exp_node)
        return graph
