"""A city served by several ISPs with known market shares.

The paper's empirical analysis splits London's viewers across the top 5
ISPs and keeps swarms ISP-friendly (peers are only matched within one
ISP).  :class:`CityNetwork` owns the ISP trees and the market-share
distribution users are drawn from.

The per-ISP subscriber shares of the UK market around the trace period
are not disclosed in the paper; the defaults below follow the publicly
reported ordering of the large UK fixed-line providers (a dominant
incumbent plus a long tail) and are configurable.
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.topology.isp import ISPNetwork
from repro.topology.nodes import AttachmentPoint

__all__ = ["CityNetwork", "default_london", "DEFAULT_ISP_SHARES"]

#: Market shares for the city's top-5 ISPs (largest first); they need not
#: sum to 1 -- the remainder is simply not simulated, like the paper's
#: focus on the top 5.
DEFAULT_ISP_SHARES: Tuple[float, ...] = (0.32, 0.26, 0.18, 0.14, 0.10)


@dataclass(frozen=True)
class CityNetwork:
    """The ISPs serving one metropolitan area, with market shares.

    Attributes:
        name: city label for reports.
        isps: the ISP trees, largest market share first.
        shares: relative subscriber shares, aligned with ``isps``.
    """

    name: str
    isps: Tuple[ISPNetwork, ...]
    shares: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.isps:
            raise ValueError("a city needs at least one ISP")
        if len(self.isps) != len(self.shares):
            raise ValueError(
                f"{len(self.isps)} ISPs but {len(self.shares)} shares provided"
            )
        if any(share <= 0 for share in self.shares):
            raise ValueError(f"shares must be > 0, got {self.shares}")
        names = [isp.name for isp in self.isps]
        if len(set(names)) != len(names):
            raise ValueError(f"ISP names must be unique, got {names}")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def isp(self, name: str) -> ISPNetwork:
        """The ISP tree with the given name."""
        for isp in self.isps:
            if isp.name == name:
                return isp
        raise KeyError(f"no ISP named {name!r} in {self.name}")

    @property
    def isp_names(self) -> List[str]:
        return [isp.name for isp in self.isps]

    def normalised_shares(self) -> Dict[str, float]:
        """Shares rescaled to sum to 1 over the modelled ISPs."""
        total = sum(self.shares)
        return {isp.name: share / total for isp, share in zip(self.isps, self.shares)}

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample_isp(self, rng: random.Random) -> ISPNetwork:
        """Draw an ISP according to market share."""
        cumulative = list(itertools.accumulate(self.shares))
        point = rng.random() * cumulative[-1]
        return self.isps[bisect.bisect_right(cumulative, point)]

    def sample_attachment(self, rng: random.Random) -> AttachmentPoint:
        """Draw a user position: ISP by share, exchange uniformly."""
        return self.sample_isp(rng).sample_attachment(rng)


def default_london(
    num_isps: int = 5,
    shares: Sequence[float] = DEFAULT_ISP_SHARES,
    *,
    num_exchanges: int = 345,
    num_pops: int = 9,
) -> CityNetwork:
    """The paper's London setting: top-5 ISPs, 345/9/1 trees each.

    The paper reports the 345/9/1 hierarchy for one major ISP; absent
    disclosed numbers for the rest we give every ISP the same regular
    structure (their localisation probabilities are what matter, and
    those follow from the counts).

    Args:
        num_isps: how many ISPs to model (the paper uses the top 5).
        shares: market shares, largest first; truncated/validated against
            ``num_isps``.
        num_exchanges: exchange points per ISP.
        num_pops: PoPs per ISP.
    """
    if num_isps < 1:
        raise ValueError(f"num_isps must be >= 1, got {num_isps}")
    if len(shares) < num_isps:
        raise ValueError(
            f"need at least {num_isps} shares, got {len(shares)}"
        )
    isps = tuple(
        ISPNetwork(f"ISP-{i + 1}", num_exchanges=num_exchanges, num_pops=num_pops)
        for i in range(num_isps)
    )
    return CityNetwork(name="London", isps=isps, shares=tuple(shares[:num_isps]))
