#!/usr/bin/env python3
"""Fail on dead intra-repo links in README.md and docs/.

Stdlib-only (the CI docs job runs it on a bare checkout).  Checks every
markdown inline link and image whose target is a relative path: the
target must exist on disk, resolved against the file containing the
link, and must stay inside the repository.  External schemes
(``http(s)://``, ``mailto:``) and pure ``#fragment`` self-references
are out of scope.  When a target carries a ``#fragment`` and points at
a markdown file, the fragment must match a heading's GitHub-style
anchor in that file.

Usage::

    python tools/check_links.py            # check README.md + docs/
    python tools/check_links.py --selftest # exercise the checker itself
"""

from __future__ import annotations

import argparse
import re
import sys
import tempfile
from pathlib import Path
from typing import Iterator, List, Tuple

REPO = Path(__file__).resolve().parent.parent

#: Inline links and images: [text](target) / ![alt](target).  Angle
#: brackets around the target and an optional "title" are allowed, as
#: in CommonMark.  Reference-style links are rare enough here not to
#: exist; the self-test pins that this pattern catches the forms we use.
_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")

#: Fenced code blocks -- links inside them are examples, not navigation.
_FENCE = re.compile(r"^(```|~~~)")

_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_links(text: str) -> Iterator[str]:
    """Yield link targets outside fenced code blocks and inline code."""
    in_fence = False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        # Strip inline code spans so `[x](y)` in backticks is ignored.
        bare = re.sub(r"`[^`]*`", "", line)
        for match in _LINK.finditer(bare):
            yield match.group(1)


def github_anchor(heading: str) -> str:
    """GitHub's anchor for a markdown heading (lowercase, dashes)."""
    anchor = heading.strip().lower()
    anchor = re.sub(r"[`*_~]", "", anchor)  # inline formatting
    anchor = re.sub(r"[^\w\- ]", "", anchor)
    return anchor.replace(" ", "-")


def anchors_in(path: Path) -> set:
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence and line.startswith("#"):
            anchors.add(github_anchor(line.lstrip("#")))
    return anchors


def check_file(md: Path, root: Path) -> List[str]:
    """Return one error string per dead link in ``md``."""
    errors = []
    for target in iter_links(md.read_text(encoding="utf-8")):
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        path_part, _, fragment = target.partition("#")
        resolved = (md.parent / path_part).resolve()
        relative_to_repo = resolved.is_relative_to(root)
        if not relative_to_repo:
            errors.append(f"{md}: link escapes the repo: {target}")
            continue
        if not resolved.exists():
            errors.append(f"{md}: dead link: {target}")
            continue
        if fragment and resolved.suffix.lower() in (".md", ".markdown"):
            if github_anchor(fragment) not in anchors_in(resolved):
                errors.append(f"{md}: dead anchor: {target}")
    return errors


def markdown_files(root: Path) -> List[Path]:
    files = [root / "README.md"]
    files += sorted((root / "docs").glob("**/*.md"))
    return [f for f in files if f.exists()]


def run(root: Path) -> int:
    errors: List[str] = []
    checked = 0
    for md in markdown_files(root):
        checked += 1
        errors.extend(check_file(md, root))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {checked} markdown file(s): {len(errors)} dead link(s)")
    return 1 if errors else 0


# ----------------------------------------------------------------------
# Self-test: the checker must catch what it claims to catch
# ----------------------------------------------------------------------


def selftest() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        (root / "docs").mkdir()
        (root / "docs" / "GOOD.md").write_text(
            "# Title here\n\n## A Sub-Section!\nbody\n"
        )
        cases: List[Tuple[str, int]] = [
            # (markdown body, expected error count)
            ("[ok](docs/GOOD.md)", 0),
            ("[ok](docs/GOOD.md#title-here)", 0),
            ("[ok](docs/GOOD.md#a-sub-section)", 0),
            ("[bad anchor](docs/GOOD.md#nope)", 1),
            ("[dead](docs/MISSING.md)", 1),
            ("[escape](../outside.md)", 1),
            ("[ext](https://example.com/x.md) [m](mailto:a@b.c)", 0),
            ("[self](#whatever)", 0),
            ("```\n[in fence](docs/MISSING.md)\n```", 0),
            ("`[in code](docs/MISSING.md)`", 0),
            ("![img](docs/MISSING.png)", 1),
            ("two: [a](docs/MISSING.md) [b](docs/ALSO.md)", 2),
        ]
        failures = 0
        for body, expected in cases:
            readme = root / "README.md"
            readme.write_text(body + "\n")
            got = len(check_file(readme, root))
            if got != expected:
                failures += 1
                print(
                    f"SELFTEST FAIL: {body!r}: expected {expected} "
                    f"error(s), got {got}",
                    file=sys.stderr,
                )
        print(f"selftest: {len(cases) - failures}/{len(cases)} cases pass")
        return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path, default=REPO, help="repository root to check"
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run the checker's own test cases instead of checking the repo",
    )
    args = parser.parse_args(argv)
    if args.selftest:
        return selftest()
    return run(args.root.resolve())


if __name__ == "__main__":
    raise SystemExit(main())
