"""Legacy installer shim.

All metadata lives in pyproject.toml (PEP 621).  This file exists only so
that ``pip install -e .`` works in offline environments without the
``wheel`` package, via setuptools' legacy develop-mode code path.
"""

from setuptools import setup

setup()
