"""Legacy installer shim + optional compiled-kernel build.

All metadata lives in pyproject.toml (PEP 621).  This file exists so
that ``pip install -e .`` works in offline environments without the
``wheel`` package (setuptools' legacy develop-mode code path), and to
declare the optional ``repro.sim._ckernel`` extension -- the compiled
columnar sweep.  The extension is marked ``optional``: a missing or
failing compiler produces a pure-python install that loses nothing but
speed (``repro.sim.kernel_columns`` falls back at import time).

Build in place with::

    python setup.py build_ext --inplace

``-ffp-contract=off`` is load-bearing: the C sweep's bit-for-bit
contract with the python kernels forbids fused multiply-adds.
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro.sim._ckernel",
            sources=["src/repro/sim/_ckernel.c"],
            optional=True,
            extra_compile_args=["-O2", "-ffp-contract=off"],
        )
    ]
)
