"""Tests for the network layer enumeration."""

import pytest

from repro.topology.layers import NetworkLayer, P2P_LAYERS


class TestOrdering:
    def test_closest_first(self):
        assert NetworkLayer.EXCHANGE < NetworkLayer.POP < NetworkLayer.CORE < NetworkLayer.SERVER

    def test_min_selects_closest(self):
        assert min(NetworkLayer.CORE, NetworkLayer.EXCHANGE) is NetworkLayer.EXCHANGE

    def test_p2p_layers_ordered(self):
        assert list(P2P_LAYERS) == sorted(P2P_LAYERS)
        assert P2P_LAYERS == (NetworkLayer.EXCHANGE, NetworkLayer.POP, NetworkLayer.CORE)


class TestPredicates:
    @pytest.mark.parametrize("layer", P2P_LAYERS)
    def test_peer_layers(self, layer):
        assert layer.is_peer_layer

    def test_server_is_not_peer_layer(self):
        assert not NetworkLayer.SERVER.is_peer_layer


class TestNames:
    def test_short_names_unique(self):
        names = {layer.short_name for layer in NetworkLayer}
        assert len(names) == len(NetworkLayer)

    def test_paper_names(self):
        assert NetworkLayer.EXCHANGE.paper_name == "Exchange Point"
        assert NetworkLayer.POP.paper_name == "Point of Presence"
        assert NetworkLayer.CORE.paper_name == "Core Router"
