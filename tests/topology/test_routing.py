"""Tests for transfer classification and per-transfer energy."""

import pytest

from repro.core.energy import BALIGA, VALANCIUS
from repro.topology.isp import ISPNetwork
from repro.topology.layers import NetworkLayer
from repro.topology.nodes import AttachmentPoint, lowest_common_layer
from repro.topology.routing import Transfer, classify_transfer, hop_count, transfer_energy_nj


@pytest.fixture
def isp():
    return ISPNetwork("ISP-1")


class TestLowestCommonLayer:
    def test_same_exchange(self):
        a = AttachmentPoint("ISP-1", pop=0, exchange=5)
        b = AttachmentPoint("ISP-1", pop=0, exchange=5)
        assert lowest_common_layer(a, b) is NetworkLayer.EXCHANGE

    def test_same_pop(self):
        a = AttachmentPoint("ISP-1", pop=0, exchange=5)
        b = AttachmentPoint("ISP-1", pop=0, exchange=6)
        assert lowest_common_layer(a, b) is NetworkLayer.POP

    def test_same_isp_cross_pop(self):
        a = AttachmentPoint("ISP-1", pop=0, exchange=5)
        b = AttachmentPoint("ISP-1", pop=3, exchange=150)
        assert lowest_common_layer(a, b) is NetworkLayer.CORE

    def test_cross_isp(self):
        a = AttachmentPoint("ISP-1", pop=0, exchange=5)
        b = AttachmentPoint("ISP-2", pop=0, exchange=5)
        assert lowest_common_layer(a, b) is NetworkLayer.SERVER

    def test_symmetric(self, isp):
        a, b = isp.attachment(3), isp.attachment(120)
        assert lowest_common_layer(a, b) is lowest_common_layer(b, a)


class TestClassifyTransfer:
    def test_local_transfer(self, isp):
        t = classify_transfer(isp.attachment(0), isp.attachment(1))
        assert t == Transfer(layer=NetworkLayer.POP, same_isp=True)
        assert t.is_local

    def test_cross_isp_not_local(self):
        a = AttachmentPoint("ISP-1", pop=0, exchange=0)
        b = AttachmentPoint("ISP-2", pop=0, exchange=0)
        t = classify_transfer(a, b)
        assert not t.same_isp
        assert not t.is_local


class TestHopCount:
    def test_paper_hop_counts(self):
        assert hop_count(NetworkLayer.SERVER) == 7
        assert hop_count(NetworkLayer.CORE) == 6
        assert hop_count(NetworkLayer.POP) == 4
        assert hop_count(NetworkLayer.EXCHANGE) == 2

    def test_consistent_with_valancius_gammas(self):
        """The Valancius per-layer gammas are exactly hops x 150."""
        assert VALANCIUS.gamma_core == hop_count(NetworkLayer.CORE) * 150
        assert VALANCIUS.gamma_pop == hop_count(NetworkLayer.POP) * 150
        assert VALANCIUS.gamma_exchange == hop_count(NetworkLayer.EXCHANGE) * 150
        assert VALANCIUS.gamma_cdn_network == hop_count(NetworkLayer.SERVER) * 150


class TestTransferEnergy:
    def test_same_exchange_cheapest(self, isp):
        bits = 1e6
        same_exp = transfer_energy_nj(VALANCIUS, isp.attachment(0), isp.attachment(0), bits)
        same_pop = transfer_energy_nj(VALANCIUS, isp.attachment(0), isp.attachment(1), bits)
        cross_pop = transfer_energy_nj(VALANCIUS, isp.attachment(0), isp.attachment(344), bits)
        assert same_exp < same_pop < cross_pop

    def test_matches_energy_model(self, isp):
        bits = 1e6
        energy = transfer_energy_nj(BALIGA, isp.attachment(0), isp.attachment(200), bits)
        assert energy == pytest.approx(BALIGA.peer_energy_nj(bits, NetworkLayer.CORE))

    def test_cross_isp_charged_at_cdn_network_rate(self):
        a = AttachmentPoint("ISP-1", pop=0, exchange=0)
        b = AttachmentPoint("ISP-2", pop=0, exchange=0)
        bits = 1e6
        expected = bits * (VALANCIUS.psi_peer_modem + VALANCIUS.pue * VALANCIUS.gamma_cdn_network)
        assert transfer_energy_nj(VALANCIUS, a, b, bits) == pytest.approx(expected)

    def test_cross_isp_more_expensive_than_core(self, isp):
        """Breaking ISP-friendliness must never look cheaper than staying in."""
        bits = 1e6
        cross = transfer_energy_nj(
            VALANCIUS,
            AttachmentPoint("ISP-1", pop=0, exchange=0),
            AttachmentPoint("ISP-2", pop=0, exchange=0),
            bits,
        )
        core = transfer_energy_nj(VALANCIUS, isp.attachment(0), isp.attachment(344), bits)
        assert cross > core

    def test_zero_bits(self, isp):
        assert transfer_energy_nj(VALANCIUS, isp.attachment(0), isp.attachment(1), 0.0) == 0.0

    def test_negative_bits_rejected(self, isp):
        with pytest.raises(ValueError):
            transfer_energy_nj(VALANCIUS, isp.attachment(0), isp.attachment(1), -1.0)
