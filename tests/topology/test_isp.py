"""Tests for the ISP metropolitan tree."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.isp import ISPNetwork, LONDON_EXCHANGES, LONDON_POPS
from repro.topology.layers import NetworkLayer
from repro.topology.nodes import AttachmentPoint


@pytest.fixture
def london():
    return ISPNetwork("ISP-1")


class TestStructure:
    def test_paper_defaults(self, london):
        assert london.num_exchanges == LONDON_EXCHANGES == 345
        assert london.num_pops == LONDON_POPS == 9

    def test_exchanges_per_pop(self, london):
        # ceil(345 / 9) = 39.
        assert london.exchanges_per_pop == 39

    def test_every_exchange_has_valid_pop(self, london):
        pops = {london.pop_of_exchange(e) for e in range(london.num_exchanges)}
        assert pops == set(range(9))

    def test_contiguous_blocks(self, london):
        assert london.pop_of_exchange(0) == 0
        assert london.pop_of_exchange(38) == 0
        assert london.pop_of_exchange(39) == 1
        assert london.pop_of_exchange(344) == 8

    def test_out_of_range_exchange(self, london):
        with pytest.raises(ValueError):
            london.pop_of_exchange(345)
        with pytest.raises(ValueError):
            london.pop_of_exchange(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ISPNetwork("")
        with pytest.raises(ValueError):
            ISPNetwork("x", num_exchanges=5, num_pops=10)
        with pytest.raises(ValueError):
            ISPNetwork("x", num_exchanges=5, num_pops=0)

    @given(
        exchanges=st.integers(min_value=1, max_value=2000),
        pops=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=50)
    def test_pop_assignment_balanced(self, exchanges, pops):
        if exchanges < pops:
            return
        isp = ISPNetwork("x", num_exchanges=exchanges, num_pops=pops)
        counts = Counter(isp.pop_of_exchange(e) for e in range(exchanges))
        # contiguous blocks of size ceil(E/P): sizes differ by < block.
        assert max(counts.values()) - min(counts.values()) < isp.exchanges_per_pop
        assert sum(counts.values()) == exchanges


class TestAttachment:
    def test_attachment_fields(self, london):
        point = london.attachment(40)
        assert point.isp == "ISP-1"
        assert point.exchange == 40
        assert point.pop == london.pop_of_exchange(40)

    def test_sampling_is_uniform_ish(self, london):
        rng = random.Random(7)
        counts = Counter(london.sample_attachment(rng).exchange for _ in range(34_500))
        # Every exchange should appear; expected count is 100.
        assert len(counts) == 345
        assert max(counts.values()) < 200

    def test_sampling_deterministic_with_seed(self, london):
        a = [london.sample_attachment(random.Random(3)).exchange for _ in range(5)]
        b = [london.sample_attachment(random.Random(3)).exchange for _ in range(5)]
        assert a == b


class TestCommonLayer:
    def test_same_exchange(self, london):
        a, b = london.attachment(10), london.attachment(10)
        assert london.common_layer(a, b) is NetworkLayer.EXCHANGE

    def test_same_pop(self, london):
        a, b = london.attachment(0), london.attachment(38)
        assert london.common_layer(a, b) is NetworkLayer.POP

    def test_cross_pop(self, london):
        a, b = london.attachment(0), london.attachment(344)
        assert london.common_layer(a, b) is NetworkLayer.CORE

    def test_foreign_point_rejected(self, london):
        foreign = AttachmentPoint(isp="ISP-2", pop=0, exchange=0)
        with pytest.raises(ValueError):
            london.common_layer(london.attachment(0), foreign)


class TestLocalisationProbabilities:
    def test_table_iii(self, london):
        probs = london.layer_probabilities()
        assert probs.exchange == pytest.approx(1 / 345)
        assert probs.pop == pytest.approx(1 / 9)
        assert probs.core == 1.0

    def test_table_rows(self, london):
        rows = london.localisation_table()
        assert [row["count"] for row in rows] == [345, 9, 1]
        assert rows[0]["probability"] == pytest.approx(0.0029, abs=1e-4)
        assert rows[1]["probability"] == pytest.approx(0.1111, abs=1e-4)
        assert rows[2]["probability"] == 1.0

    def test_empirical_co_location_matches_probability(self, london):
        """Sampled pairs share an exchange with probability ~1/345."""
        rng = random.Random(11)
        trials = 30_000
        hits = sum(
            1
            for _ in range(trials)
            if london.sample_attachment(rng).exchange == london.sample_attachment(rng).exchange
        )
        assert hits / trials == pytest.approx(1 / 345, rel=0.35)


class TestNetworkxExport:
    def test_node_and_edge_counts(self):
        isp = ISPNetwork("small", num_exchanges=12, num_pops=3)
        graph = isp.to_networkx()
        # 1 core + 3 pops + 12 exchanges.
        assert graph.number_of_nodes() == 16
        # core-pop edges (3) + pop-exchange edges (12).
        assert graph.number_of_edges() == 15

    def test_tree_property(self):
        import networkx as nx

        graph = ISPNetwork("t", num_exchanges=20, num_pops=4).to_networkx()
        assert nx.is_tree(graph)
