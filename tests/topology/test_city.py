"""Tests for the multi-ISP city model."""

import random
from collections import Counter

import pytest

from repro.topology.city import CityNetwork, DEFAULT_ISP_SHARES, default_london
from repro.topology.isp import ISPNetwork


@pytest.fixture
def london():
    return default_london()


class TestDefaultLondon:
    def test_five_isps(self, london):
        assert london.isp_names == ["ISP-1", "ISP-2", "ISP-3", "ISP-4", "ISP-5"]

    def test_shares_aligned(self, london):
        assert london.shares == DEFAULT_ISP_SHARES

    def test_paper_tree_shape(self, london):
        for isp in london.isps:
            assert isp.num_exchanges == 345
            assert isp.num_pops == 9

    def test_custom_isp_count(self):
        city = default_london(num_isps=3)
        assert len(city.isps) == 3

    def test_too_few_shares_rejected(self):
        with pytest.raises(ValueError):
            default_london(num_isps=3, shares=(0.5, 0.5))

    def test_zero_isps_rejected(self):
        with pytest.raises(ValueError):
            default_london(num_isps=0)


class TestValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            CityNetwork("x", isps=(ISPNetwork("a"),), shares=(0.5, 0.5))

    def test_duplicate_names(self):
        with pytest.raises(ValueError):
            CityNetwork("x", isps=(ISPNetwork("a"), ISPNetwork("a")), shares=(0.5, 0.5))

    def test_nonpositive_share(self):
        with pytest.raises(ValueError):
            CityNetwork("x", isps=(ISPNetwork("a"),), shares=(0.0,))

    def test_empty_city(self):
        with pytest.raises(ValueError):
            CityNetwork("x", isps=(), shares=())


class TestLookup:
    def test_isp_by_name(self, london):
        assert london.isp("ISP-3").name == "ISP-3"

    def test_unknown_isp(self, london):
        with pytest.raises(KeyError):
            london.isp("ISP-99")

    def test_normalised_shares_sum_to_one(self, london):
        assert sum(london.normalised_shares().values()) == pytest.approx(1.0)

    def test_normalised_shares_preserve_order(self, london):
        shares = london.normalised_shares()
        assert shares["ISP-1"] > shares["ISP-5"]


class TestSampling:
    def test_share_proportional(self, london):
        rng = random.Random(5)
        counts = Counter(london.sample_isp(rng).name for _ in range(20_000))
        norm = london.normalised_shares()
        for name, share in norm.items():
            assert counts[name] / 20_000 == pytest.approx(share, rel=0.1)

    def test_attachment_belongs_to_a_city_isp(self, london):
        rng = random.Random(9)
        for _ in range(50):
            point = london.sample_attachment(rng)
            assert point.isp in london.isp_names
            isp = london.isp(point.isp)
            assert 0 <= point.exchange < isp.num_exchanges
            assert point.pop == isp.pop_of_exchange(point.exchange)

    def test_deterministic_with_seed(self, london):
        a = [london.sample_attachment(random.Random(1)) for _ in range(5)]
        b = [london.sample_attachment(random.Random(1)) for _ in range(5)]
        assert a == b
