"""Tests for swarm scoping policies."""

import pytest

from repro.sim.policies import PAPER_POLICY, SwarmKey, SwarmPolicy
from repro.topology.nodes import AttachmentPoint
from repro.trace.events import Session


def make_session(content_id="item-a", isp="ISP-1", bitrate=1.5e6, user_id=1):
    return Session(
        session_id=0,
        user_id=user_id,
        content_id=content_id,
        start=0.0,
        duration=600.0,
        bitrate=bitrate,
        attachment=AttachmentPoint(isp=isp, pop=0, exchange=0),
    )


class TestPaperPolicy:
    def test_defaults(self):
        assert PAPER_POLICY.split_by_isp
        assert PAPER_POLICY.split_by_bitrate

    def test_key_includes_all_dimensions(self):
        key = PAPER_POLICY.key_for(make_session())
        assert key == SwarmKey(content_id="item-a", isp="ISP-1", bitrate_class="1.50Mbps")

    def test_same_item_different_isp_split(self):
        a = PAPER_POLICY.key_for(make_session(isp="ISP-1"))
        b = PAPER_POLICY.key_for(make_session(isp="ISP-2"))
        assert a != b

    def test_same_item_different_bitrate_split(self):
        a = PAPER_POLICY.key_for(make_session(bitrate=1.5e6))
        b = PAPER_POLICY.key_for(make_session(bitrate=3.0e6))
        assert a != b

    def test_different_items_always_split(self):
        a = PAPER_POLICY.key_for(make_session(content_id="x"))
        b = PAPER_POLICY.key_for(make_session(content_id="y"))
        assert a != b


class TestRelaxedPolicies:
    def test_cross_isp_merges(self):
        policy = SwarmPolicy(split_by_isp=False)
        a = policy.key_for(make_session(isp="ISP-1"))
        b = policy.key_for(make_session(isp="ISP-2"))
        assert a == b
        assert a.isp is None

    def test_mixed_bitrate_merges(self):
        policy = SwarmPolicy(split_by_bitrate=False)
        a = policy.key_for(make_session(bitrate=1.5e6))
        b = policy.key_for(make_session(bitrate=5.0e6))
        assert a == b
        assert a.bitrate_class is None


class TestBitrateClass:
    def test_label_format(self):
        assert PAPER_POLICY.bitrate_class(1.5e6) == "1.50Mbps"
        assert PAPER_POLICY.bitrate_class(0.8e6) == "0.80Mbps"

    def test_close_bitrates_distinct(self):
        assert PAPER_POLICY.bitrate_class(1.5e6) != PAPER_POLICY.bitrate_class(1.51e6)

    def test_invalid_bitrate(self):
        with pytest.raises(ValueError):
            PAPER_POLICY.bitrate_class(0.0)

    def test_keys_hashable_and_frozen(self):
        key = PAPER_POLICY.key_for(make_session())
        assert hash(key) == hash(PAPER_POLICY.key_for(make_session()))
        with pytest.raises(AttributeError):
            key.isp = "other"
