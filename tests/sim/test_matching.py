"""Tests for closest-first window matching."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.matching import PeerState, WindowAllocation, match_window
from repro.topology.layers import NetworkLayer


def peer(i, *, demand=100.0, supply=100.0, exchange=0, pop=0, isp="ISP-1", user=None):
    return PeerState(
        member_id=i,
        user_id=i if user is None else user,
        demand=demand,
        supply=supply,
        exchange=exchange,
        pop=pop,
        isp=isp,
    )


class TestDegenerateSwarms:
    def test_empty(self):
        alloc = match_window([])
        assert alloc.server_bits == 0.0
        assert alloc.total_peer_bits == 0.0

    def test_single_member_all_server(self):
        alloc = match_window([peer(0)])
        assert alloc.server_bits == 100.0
        assert alloc.total_peer_bits == 0.0
        assert alloc.demanded_bits == 100.0

    def test_pair_shares_seed_upload(self):
        """L = 2: the seed re-shares its stream; Delta-Tp = (L-1) q = q."""
        alloc = match_window([peer(0, exchange=0), peer(1, exchange=1)])
        assert alloc.server_bits == pytest.approx(100.0)
        assert alloc.total_peer_bits == pytest.approx(100.0)

    def test_pair_with_limited_upload(self):
        alloc = match_window([peer(0, supply=30.0), peer(1, supply=30.0)])
        assert alloc.total_peer_bits == pytest.approx(30.0)
        assert alloc.server_bits == pytest.approx(100.0 + 70.0)


class TestEq2Correspondence:
    """The fluid matcher reproduces Delta-Tp = (L-1) * min(q, beta)."""

    @pytest.mark.parametrize("L", [2, 3, 5, 10])
    @pytest.mark.parametrize("ratio", [0.2, 0.5, 1.0])
    def test_uniform_swarm(self, L, ratio):
        beta = 100.0
        members = [peer(i, demand=beta, supply=ratio * beta, exchange=i) for i in range(L)]
        alloc = match_window(members)
        expected_peer = (L - 1) * min(ratio * beta, beta)
        assert alloc.total_peer_bits == pytest.approx(expected_peer)
        assert alloc.server_bits == pytest.approx(L * beta - expected_peer)

    def test_oversupply_capped_by_demand(self):
        members = [peer(i, demand=100.0, supply=500.0, exchange=i) for i in range(4)]
        alloc = match_window(members)
        # Only the three non-seed streams are peer-servable.
        assert alloc.total_peer_bits == pytest.approx(300.0)


class TestConservation:
    def test_demand_fully_accounted(self):
        members = [peer(i, exchange=i % 2, pop=i % 2) for i in range(7)]
        alloc = match_window(members)
        assert alloc.server_bits + alloc.total_peer_bits == pytest.approx(
            alloc.demanded_bits
        )

    def test_uploads_equal_peer_bits(self):
        members = [peer(i, exchange=i % 3) for i in range(9)]
        alloc = match_window(members)
        assert sum(alloc.uploaded_bits.values()) == pytest.approx(alloc.total_peer_bits)

    @given(
        n=st.integers(min_value=1, max_value=12),
        ratio=st.floats(min_value=0.0, max_value=2.0),
        spread=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=80, deadline=None)
    def test_conservation_property(self, n, ratio, spread):
        members = [
            peer(i, demand=100.0, supply=ratio * 100.0, exchange=i % spread, pop=(i % spread) % 2)
            for i in range(n)
        ]
        alloc = match_window(members)
        assert alloc.server_bits + alloc.total_peer_bits == pytest.approx(alloc.demanded_bits)
        assert sum(alloc.uploaded_bits.values()) == pytest.approx(alloc.total_peer_bits)
        assert alloc.server_bits >= 100.0 - 1e-6  # the seed stream at least
        # No member uploads beyond its capacity.
        for uid, bits in alloc.uploaded_bits.items():
            assert bits <= ratio * 100.0 + 1e-6


class TestLocality:
    def test_same_exchange_matched_at_exchange(self):
        members = [peer(i, exchange=5, pop=1) for i in range(3)]
        alloc = match_window(members)
        assert set(alloc.peer_bits) == {NetworkLayer.EXCHANGE}

    def test_same_pop_without_shared_exchange(self):
        members = [peer(i, exchange=i, pop=2) for i in range(3)]
        alloc = match_window(members)
        assert set(alloc.peer_bits) == {NetworkLayer.POP}

    def test_cross_pop_goes_to_core(self):
        members = [peer(i, exchange=i, pop=i) for i in range(3)]
        alloc = match_window(members)
        assert set(alloc.peer_bits) == {NetworkLayer.CORE}

    def test_closest_first_preference(self):
        """Co-located pairs exhaust local supply before climbing layers."""
        # Two members at exchange 0, two at exchange 1, all in pop 0.
        members = [
            peer(0, exchange=0), peer(1, exchange=0),
            peer(2, exchange=1), peer(3, exchange=1),
        ]
        alloc = match_window(members)
        # Seed (member 0) feeds from server; member 1 is served at the
        # exchange by member 0's upload... exchange-local bits dominate.
        assert alloc.peer_bits.get(NetworkLayer.EXCHANGE, 0.0) > 0.0
        assert alloc.total_peer_bits == pytest.approx(300.0)
        assert (
            alloc.peer_bits.get(NetworkLayer.EXCHANGE, 0.0)
            >= alloc.peer_bits.get(NetworkLayer.POP, 0.0)
        )

    def test_big_local_swarm_all_exchange(self):
        members = [peer(i, exchange=0) for i in range(20)]
        alloc = match_window(members)
        assert alloc.peer_bits.get(NetworkLayer.EXCHANGE, 0.0) == pytest.approx(1900.0)


class TestSelfServiceForbidden:
    def test_lone_member_per_exchange_cannot_self_serve(self):
        """A member with supply cannot satisfy its own demand."""
        # Non-seed member 1 is alone at its exchange with huge supply.
        members = [peer(0, exchange=0, supply=0.0), peer(1, exchange=1, supply=1000.0)]
        alloc = match_window(members)
        # Member 1's demand can only come from the seed (supply 0) -> server.
        assert alloc.total_peer_bits == 0.0
        assert alloc.server_bits == pytest.approx(200.0)

    def test_pair_at_same_exchange_with_one_sided_supply(self):
        # Seed supplies, fresh peer demands; both at one exchange.
        members = [peer(0, exchange=0, supply=100.0), peer(1, exchange=0, supply=100.0)]
        alloc = match_window(members)
        assert alloc.peer_bits.get(NetworkLayer.EXCHANGE, 0.0) == pytest.approx(100.0)


class TestCrossIsp:
    def test_disabled_by_default(self):
        members = [peer(0, isp="ISP-1"), peer(1, isp="ISP-2")]
        alloc = match_window(members)
        assert alloc.total_peer_bits == 0.0

    def test_enabled_matches_at_transit_layer(self):
        members = [peer(0, isp="ISP-1"), peer(1, isp="ISP-2")]
        alloc = match_window(members, allow_cross_isp=True)
        assert alloc.peer_bits.get(NetworkLayer.SERVER, 0.0) == pytest.approx(100.0)

    def test_same_isp_still_preferred(self):
        members = [
            peer(0, isp="ISP-1", exchange=0),
            peer(1, isp="ISP-1", exchange=1),
            peer(2, isp="ISP-2", exchange=0),
        ]
        alloc = match_window(members, allow_cross_isp=True)
        # Member 1 matches within ISP-1 before any transit matching.
        assert alloc.peer_bits.get(NetworkLayer.POP, 0.0) > 0.0


class TestWindowAllocation:
    def test_scaled(self):
        alloc = WindowAllocation(
            peer_bits={NetworkLayer.POP: 10.0},
            server_bits=5.0,
            uploaded_bits={1: 10.0},
            demanded_bits=15.0,
        )
        double = alloc.scaled(2.0)
        assert double.peer_bits[NetworkLayer.POP] == 20.0
        assert double.server_bits == 10.0
        assert double.uploaded_bits[1] == 20.0
        assert double.demanded_bits == 30.0

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            WindowAllocation().scaled(-1.0)

    def test_peer_state_validation(self):
        with pytest.raises(ValueError):
            PeerState(member_id=0, user_id=0, demand=-1.0, supply=0.0, exchange=0, pop=0, isp="x")
