"""Backend equivalence: every backend is bit-for-bit the serial run.

The runtime's core guarantee (see repro/sim/backends.py): swarm tasks
are canonically ordered, kernels are pure, and outputs fold in task
order -- so thread and process pools must reproduce the serial
baseline *exactly* (float equality, not approx), across policies,
participation rates and the lingering-seed extension.
"""

import os
import signal
import threading
import time

import pytest

from repro.sim import SimulationConfig, Simulator, simulate
from repro.sim.backends import (
    DistributedBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.sim.grouping import ExternalGrouping
from repro.sim.kernel import build_tasks, merge_outputs, run_swarm
from repro.sim.policies import SwarmPolicy
from repro.sim.queue import WorkQueue
from repro.sim.worker import run_worker
from repro.trace.generator import GeneratorConfig, TraceGenerator


@pytest.fixture(scope="module")
def trace():
    config = GeneratorConfig(
        num_users=300, num_items=25, days=2, expected_sessions=2_500, seed=42
    )
    return TraceGenerator(config=config).generate()


def assert_identical(a, b):
    """Exact equality at every accounting level of two results.

    Field-by-field asserts first (readable failures), then the
    canonical catch-all ``identical_to`` so fields added later are
    still compared.
    """
    assert a.total.server_bits == b.total.server_bits
    assert a.total.demanded_bits == b.total.demanded_bits
    assert a.total.peer_bits == b.total.peer_bits
    assert a.total.watch_seconds == b.total.watch_seconds
    assert a.total.sessions == b.total.sessions
    assert list(a.per_swarm.keys()) == list(b.per_swarm.keys())
    for key, swarm in a.per_swarm.items():
        other = b.per_swarm[key]
        assert swarm.ledger.server_bits == other.ledger.server_bits
        assert swarm.ledger.peer_bits == other.ledger.peer_bits
        assert swarm.capacity == other.capacity
    assert a.per_isp_day.keys() == b.per_isp_day.keys()
    for key, ledger in a.per_isp_day.items():
        assert ledger.server_bits == b.per_isp_day[key].server_bits
        assert ledger.demanded_bits == b.per_isp_day[key].demanded_bits
        assert ledger.peer_bits == b.per_isp_day[key].peer_bits
    assert a.per_user.keys() == b.per_user.keys()
    for uid, traffic in a.per_user.items():
        assert traffic.watched_bits == b.per_user[uid].watched_bits
        assert traffic.uploaded_bits == b.per_user[uid].uploaded_bits
    assert a.identical_to(b)


#: One config per axis the kernel branches on.
CONFIGS = {
    "paper-default": SimulationConfig(),
    "upload-ratio": SimulationConfig(upload_ratio=0.4),
    "cross-isp-swarms": SimulationConfig(policy=SwarmPolicy(split_by_isp=False)),
    "mixed-bitrates": SimulationConfig(policy=SwarmPolicy(split_by_bitrate=False)),
    "participation": SimulationConfig(participation_rate=0.35),
    "lingering-seeds": SimulationConfig(seed_linger_seconds=120.0),
    "random-matching": SimulationConfig(locality_aware_matching=False),
    "cross-isp-matching": SimulationConfig(
        policy=SwarmPolicy(split_by_isp=False), allow_cross_isp_matching=True
    ),
}


class TestBackendEquivalence:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_thread_backend_identical_to_serial(self, trace, name):
        config = CONFIGS[name]
        serial = Simulator(config, backend=SerialBackend()).run(trace)
        threaded = Simulator(config, backend=ThreadBackend(4)).run(trace)
        assert_identical(serial, threaded)

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_process_backend_identical_to_serial(self, trace, name):
        config = CONFIGS[name]
        serial = Simulator(config, backend=SerialBackend()).run(trace)
        # min_sessions=0 forces real worker processes even on this
        # small trace (the default would fall back inline).
        pooled = Simulator(
            config, backend=ProcessPoolBackend(2, min_sessions=0)
        ).run(trace)
        assert_identical(serial, pooled)

    def test_workers_flag_identical_to_serial(self, trace):
        serial = simulate(trace)
        parallel = simulate(trace, SimulationConfig(workers=4))
        assert_identical(serial, parallel)

    def test_result_independent_of_session_order(self, trace):
        """Canonical sharding: a shuffled stream gives the same result."""
        serial = simulate(trace)
        reversed_stream = Simulator(SimulationConfig()).run_stream(
            reversed(trace.sessions), trace.horizon
        )
        assert_identical(serial, reversed_stream)


class TestRunStream:
    def test_stream_matches_materialized_run(self, trace):
        config = SimulationConfig()
        from_trace = Simulator(config).run(trace)
        from_stream = Simulator(config).run_stream(iter(trace), trace.horizon)
        assert_identical(from_trace, from_stream)

    def test_generator_stream_matches_generated_trace(self):
        gen = TraceGenerator(
            config=GeneratorConfig(
                num_users=150, num_items=12, days=1, expected_sessions=800, seed=9
            )
        )
        trace = gen.generate()
        result = Simulator(SimulationConfig()).run_stream(
            gen.iter_sessions(), gen.config.horizon
        )
        assert_identical(simulate(trace), result)

    def test_rejects_nonpositive_horizon(self):
        with pytest.raises(ValueError):
            Simulator().run_stream(iter([]), 0.0)

    def test_rejects_sessions_past_horizon(self, trace):
        with pytest.raises(ValueError):
            Simulator().run_stream(iter(trace), trace.horizon / 4)


class TestKernelContracts:
    def test_tasks_canonically_ordered(self, trace):
        config = SimulationConfig()
        tasks = build_tasks(trace, trace.horizon, config.policy)
        keys = [t.key.sort_key() for t in tasks]
        assert keys == sorted(keys)
        for task in tasks:
            order = [(s.start, s.session_id) for s in task.sessions]
            assert order == sorted(order)

    def test_kernel_is_pure(self, trace):
        config = SimulationConfig()
        task = build_tasks(trace, trace.horizon, config.policy)[0]
        first = run_swarm(task, config)
        second = run_swarm(task, config)
        assert first.result.ledger.server_bits == second.result.ledger.server_bits
        assert first.per_isp_day.keys() == second.per_isp_day.keys()
        assert first.per_user.keys() == second.per_user.keys()

    def test_tasks_and_outputs_pickle(self, trace):
        import pickle

        config = SimulationConfig()
        task = build_tasks(trace, trace.horizon, config.policy)[0]
        assert pickle.loads(pickle.dumps(task)) == task
        output = run_swarm(task, config)
        clone = pickle.loads(pickle.dumps(output))
        assert clone.result.ledger.server_bits == output.result.ledger.server_bits

    def test_merge_outputs_empty(self):
        result = merge_outputs([], delta_tau=10.0, horizon=86_400.0, upload_ratio=1.0)
        assert result.total.demanded_bits == 0.0
        assert result.per_swarm == {}


class TestBackendSelection:
    def test_auto_serial(self):
        assert isinstance(resolve_backend(None, None), SerialBackend)
        assert isinstance(resolve_backend(None, 1), SerialBackend)

    def test_auto_process_when_workers(self):
        backend = resolve_backend(None, 4)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.workers == 4

    def test_explicit_names(self):
        assert isinstance(resolve_backend("serial", 8), SerialBackend)
        assert isinstance(resolve_backend("thread", 3), ThreadBackend)
        assert isinstance(resolve_backend("process", 3), ProcessPoolBackend)

    def test_distributed_name_resolves_with_queue_dir(self, tmp_path):
        backend = resolve_backend("distributed", 2, str(tmp_path / "q"))
        try:
            assert isinstance(backend, DistributedBackend)
            assert backend.workers == 2
            assert backend._queue_root == tmp_path / "q"
        finally:
            backend.close()

    def test_config_queue_dir_requires_distributed(self, tmp_path):
        with pytest.raises(ValueError):
            SimulationConfig(backend="process", queue_dir=str(tmp_path))
        with pytest.raises(ValueError):
            SimulationConfig(queue_dir=str(tmp_path))
        config = SimulationConfig(backend="distributed", queue_dir=str(tmp_path))
        assert config.queue_dir == str(tmp_path)

    def test_distributed_backend_validation(self):
        with pytest.raises(ValueError):
            DistributedBackend(0)
        with pytest.raises(ValueError):
            DistributedBackend(2, lease_timeout=0.0)
        with pytest.raises(ValueError):
            DistributedBackend(2, shard_quantum=0)
        with pytest.raises(ValueError):
            DistributedBackend(2, max_attempts=0)

    def test_distributed_empty_plan_short_circuits(self, tmp_path):
        """No tasks -> no job, no workers, no queue traffic."""
        backend = DistributedBackend(2, queue_dir=tmp_path / "q")
        try:
            assert backend.map_swarms([], SimulationConfig()) == []
            assert list(backend.iter_outputs([], SimulationConfig())) == []
            assert backend.live_workers() == 0  # nothing was ever spawned
        finally:
            backend.close()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("gpu")

    def test_config_validates_workers_and_backend(self):
        with pytest.raises(ValueError):
            SimulationConfig(workers=0)
        with pytest.raises(ValueError):
            SimulationConfig(backend="gpu")

    def test_process_pool_single_task_falls_back_inline(self):
        backend = ProcessPoolBackend(4)
        config = SimulationConfig()
        trace = TraceGenerator(
            config=GeneratorConfig(
                num_users=20, num_items=1, days=1, expected_sessions=30, seed=3
            )
        ).generate()
        tasks = build_tasks(trace, trace.horizon, config.policy)
        outputs = backend.map_swarms(tasks, config)
        assert len(outputs) == len(tasks)

    def test_process_pool_small_workload_falls_back_inline(self, trace):
        """Below min_sessions the pool is never spawned (same results,
        no per-run executor cost on tiny experiment subtraces)."""
        backend = ProcessPoolBackend(4, min_sessions=10**9)
        config = SimulationConfig()
        tasks = build_tasks(trace, trace.horizon, config.policy)
        outputs = backend.map_swarms(tasks, config)
        assert len(outputs) == len(tasks)

    def test_simulator_caches_resolved_backend(self):
        simulator = Simulator(SimulationConfig(workers=2))
        assert simulator.backend is simulator.backend


def make_matrix_backend(backend_name, tmp_path):
    """One backend per matrix axis value, tuned to really parallelize
    on the test trace (no inline fallbacks, real worker processes)."""
    backends = {
        "serial": lambda: SerialBackend(),
        "thread": lambda: ThreadBackend(3),
        # min_sessions=0 forces real worker processes on this trace.
        "process": lambda: ProcessPoolBackend(2, min_sessions=0),
        # A tiny shard quantum forces several work items through the
        # file queue; the two spawned workers are real OS processes.
        "distributed": lambda: DistributedBackend(
            2,
            queue_dir=tmp_path / "queue",
            lease_timeout=60.0,
            poll_interval=0.01,
            shard_quantum=400,
        ),
    }
    return backends[backend_name]()


class TestReductionMatrix:
    """Backend x reduction x grouping equivalence: every cell of the
    {serial, thread, process, distributed} x {batched, streaming, spill}
    x {memory, external} matrix, on both entry points (run /
    run_stream), reproduces the serial-batched baseline bit for bit --
    the streaming modes obey the ``workers + 1`` residency bound, and
    external grouping obeys its sort-buffer bound, while doing it.

    The baseline runs ``kernel="object"`` and every matrix cell runs
    ``kernel="columnar"``, so each cell is also a cross-kernel identity
    check (see repro/sim/kernel_columns.py)."""

    @pytest.fixture(scope="class")
    def reference(self, trace):
        return Simulator(
            SimulationConfig(kernel="object"), backend=SerialBackend()
        ).run(trace)

    @pytest.mark.parametrize(
        "backend_name", ["serial", "thread", "process", "distributed"]
    )
    @pytest.mark.parametrize("reduction", ["batched", "streaming", "spill"])
    @pytest.mark.parametrize("grouping", ["memory", "external"])
    def test_backend_reduction_equivalence(
        self, trace, reference, backend_name, reduction, grouping, tmp_path
    ):
        backend = make_matrix_backend(backend_name, tmp_path)
        spill_dir = str(tmp_path / "spill") if reduction == "spill" else None
        config = SimulationConfig(
            reduction=reduction, spill_dir=spill_dir, kernel="columnar"
        )
        # run_sessions=500 forces real spill-and-merge grouping on this
        # ~2.5K-session trace (and exercises worker-side extent decode).
        strategy = (
            ExternalGrouping(shard_dir=tmp_path / "shards", run_sessions=500)
            if grouping == "external"
            else None
        )
        simulator = Simulator(config, backend=backend, grouping=strategy)
        try:
            from_run = simulator.run(trace)
            assert_identical(reference, from_run)
            stats = simulator.last_reduction
            assert stats is not None and stats.mode == reduction
            if reduction != "batched":
                workers = getattr(backend, "workers", 1)
                assert 1 <= stats.peak_resident <= workers + 1
            grouping_stats = simulator.last_grouping
            assert grouping_stats is not None and grouping_stats.mode == grouping
            if grouping == "external":
                assert grouping_stats.peak_buffered_sessions <= 500
                assert grouping_stats.runs_spilled >= 1

            from_stream = simulator.run_stream(iter(trace.sessions), trace.horizon)
            assert_identical(reference, from_stream)
        finally:
            if hasattr(backend, "close"):
                backend.close()


class TestSweepMatrix:
    """Sweep x backend x reduction x grouping: ``run_sweep`` reproduces
    the K independent serial-batched runs bit for bit in every cell of
    the {serial, thread, process, distributed} x {batched, streaming,
    spill} x {memory, external} matrix, while the streaming cells keep
    each per-config reducer inside the ``workers + 1`` residency bound.

    As in TestReductionMatrix, the baselines run ``kernel="object"``
    and the sweep configs run ``kernel="columnar"``, so the whole
    matrix is also a cross-kernel identity check."""

    RATIOS = (0.2, 0.6, 1.0)

    @pytest.fixture(scope="class")
    def sweep_reference(self, trace):
        return [
            Simulator(
                SimulationConfig(upload_ratio=r, kernel="object"),
                backend=SerialBackend(),
            ).run(trace)
            for r in self.RATIOS
        ]

    @pytest.mark.parametrize(
        "backend_name", ["serial", "thread", "process", "distributed"]
    )
    @pytest.mark.parametrize("reduction", ["batched", "streaming", "spill"])
    @pytest.mark.parametrize("grouping", ["memory", "external"])
    def test_sweep_matrix_cell(
        self, trace, sweep_reference, backend_name, reduction, grouping, tmp_path
    ):
        backend = make_matrix_backend(backend_name, tmp_path)
        spill_dir = str(tmp_path / "spill") if reduction == "spill" else None
        config = SimulationConfig(reduction=reduction, spill_dir=spill_dir)
        strategy = (
            ExternalGrouping(shard_dir=tmp_path / "shards", run_sessions=500)
            if grouping == "external"
            else None
        )
        simulator = Simulator(config, backend=backend, grouping=strategy)
        configs = [
            SimulationConfig(upload_ratio=r, kernel="columnar") for r in self.RATIOS
        ]
        try:
            results = simulator.run_sweep(trace, configs)
            assert len(results) == len(self.RATIOS)
            for reference, result in zip(sweep_reference, results):
                assert_identical(reference, result)
            sweep_stats = simulator.last_sweep
            assert sweep_stats is not None
            assert sweep_stats.configs == len(self.RATIOS)
            reduction_stats = simulator.last_reduction
            assert reduction_stats is not None and reduction_stats.mode == reduction
            if reduction != "batched":
                workers = getattr(backend, "workers", 1)
                # peak_resident is the worst single per-config reducer.
                assert 1 <= reduction_stats.peak_resident <= workers + 1
            grouping_stats = simulator.last_grouping
            assert grouping_stats is not None and grouping_stats.mode == grouping

            from_stream = simulator.run_sweep_stream(
                iter(trace.sessions), trace.horizon, configs
            )
            for reference, result in zip(sweep_reference, from_stream):
                assert_identical(reference, result)
        finally:
            if hasattr(backend, "close"):
                backend.close()


class TestDistributedFaultTolerance:
    """Worker death must be invisible in the result: stale leases are
    requeued onto surviving workers and the fold converges bit for bit."""

    @pytest.fixture()
    def small_trace(self):
        return TraceGenerator(
            config=GeneratorConfig(
                num_users=200, num_items=12, days=1, expected_sessions=1_200, seed=7
            )
        ).generate()

    def test_abandoned_claim_requeued_end_to_end(self, small_trace, tmp_path):
        """Deterministic lease recovery: a 'worker' claims an item and
        dies (never renews, never acks); the coordinator requeues it
        past the lease and a real worker completes the run."""
        serial = Simulator(SimulationConfig(), backend=SerialBackend()).run(
            small_trace
        )
        queue_root = tmp_path / "queue"
        backend = DistributedBackend(
            2,
            queue_dir=queue_root,
            spawn=False,  # only our in-test worker may serve the queue
            lease_timeout=0.4,
            poll_interval=0.01,
            shard_quantum=100,
            progress_timeout=60.0,
        )
        claimed = threading.Event()
        stop_recorded = {}

        def dead_worker():
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and not claimed.is_set():
                for job_dir in queue_root.glob("job-*"):
                    queue = WorkQueue(job_dir, lease_timeout=0.4, create=False)
                    if queue.claim("dead-worker") is not None:
                        claimed.set()  # ...and never renew, ack, or return
                        return
                time.sleep(0.005)

        def live_worker():
            claimed.wait(timeout=30.0)
            stop_recorded["processed"] = run_worker(
                queue_root, poll_interval=0.01, worker_id="survivor"
            )

        threads = [
            threading.Thread(target=dead_worker),
            threading.Thread(target=live_worker),
        ]
        for thread in threads:
            thread.start()
        try:
            result = Simulator(SimulationConfig(), backend=backend).run(small_trace)
        finally:
            (queue_root / "STOP").touch()
            for thread in threads:
                thread.join(timeout=30.0)
            backend.close()
        assert claimed.is_set(), "the saboteur never got a claim"
        assert backend.last_requeues >= 1  # the dead claim was recovered
        assert stop_recorded["processed"] >= 1
        assert_identical(serial, result)

    def test_sigkilled_worker_process_converges(self, small_trace, tmp_path):
        """Kill -9 one of two real worker processes mid-run: the
        coordinator requeues whatever it held and the other worker
        finishes; the result is still bit-for-bit serial."""
        serial = Simulator(SimulationConfig(), backend=SerialBackend()).run(
            small_trace
        )
        queue_root = tmp_path / "queue"
        backend = DistributedBackend(
            2,
            queue_dir=queue_root,
            lease_timeout=1.0,
            poll_interval=0.01,
            shards_per_worker=2,
            shard_quantum=10**9,  # few, large blocks: kills land mid-task
            progress_timeout=120.0,
        )
        killed = threading.Event()

        def assassin():
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline and not killed.is_set():
                pids = {proc.pid for proc in backend._procs}
                for lease in queue_root.glob("job-*/claimed/*.lease"):
                    try:
                        worker_id = lease.read_text().split()[0]
                        pid = int(worker_id.rsplit(":", 1)[1])
                    except (OSError, ValueError, IndexError):
                        continue
                    if pid in pids:
                        try:
                            os.kill(pid, signal.SIGKILL)
                        except OSError:  # already gone
                            continue
                        killed.set()
                        return
                time.sleep(0.002)

        thread = threading.Thread(target=assassin)
        thread.start()
        try:
            result = Simulator(SimulationConfig(), backend=backend).run(small_trace)
            thread.join(timeout=60.0)
            assert killed.is_set(), "no worker was ever holding a claim"
            # The victim really died; the coordinator's mid-job fleet
            # self-healing may already have spawned a replacement, so
            # count spawns, not survivors.
            assert backend._spawned >= 3
            assert_identical(serial, result)
        finally:
            thread.join(timeout=1.0)
            backend.close()

    def test_failed_item_surfaces_error(self, tmp_path):
        """A poisoned item parked in failed/ aborts the run with its
        error instead of hanging the coordinator."""
        queue_root = tmp_path / "queue"
        backend = DistributedBackend(
            1,
            queue_dir=queue_root,
            spawn=False,
            lease_timeout=30.0,
            poll_interval=0.01,
            progress_timeout=60.0,
        )

        def corrupting_worker():
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                for task in queue_root.glob("job-*/pending/*.task"):
                    try:
                        task.write_bytes(b"\x80poisoned")
                    except OSError:
                        continue
                    run_worker(
                        queue_root, poll_interval=0.01, idle_exit=0.1,
                        worker_id="victim",
                    )
                    return
                time.sleep(0.005)

        trace = TraceGenerator(
            config=GeneratorConfig(
                num_users=50, num_items=2, days=1, expected_sessions=150, seed=3
            )
        ).generate()
        thread = threading.Thread(target=corrupting_worker)
        thread.start()
        try:
            with pytest.raises(RuntimeError, match="gave up"):
                Simulator(SimulationConfig(), backend=backend).run(trace)
        finally:
            (queue_root / "STOP").touch()
            thread.join(timeout=30.0)
            backend.close()


class TestExecutorReuse:
    def test_pool_persists_across_runs(self, trace):
        backend = ProcessPoolBackend(2, min_sessions=0)
        config = SimulationConfig()
        tasks = build_tasks(trace, trace.horizon, config.policy)
        backend.map_swarms(tasks, config)
        pool = backend._executor
        assert pool is not None
        backend.map_swarms(tasks, config)
        assert backend._executor is pool  # reused, not respawned
        backend.close()
        assert backend._executor is None

    def test_pool_recreated_after_close(self, trace):
        backend = ProcessPoolBackend(2, min_sessions=0)
        config = SimulationConfig()
        tasks = build_tasks(trace, trace.horizon, config.policy)
        first = backend.map_swarms(tasks, config)
        backend.close()
        second = backend.map_swarms(tasks, config)
        assert len(first) == len(second)
        backend.close()
