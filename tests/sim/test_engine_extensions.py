"""Tests for the simulator's participation and lingering-seed extensions."""

import pytest

from repro.core import VALANCIUS
from repro.sim import SimulationConfig, simulate
from repro.topology.nodes import AttachmentPoint
from repro.trace.events import Session, Trace
from repro.trace.generator import GeneratorConfig, TraceGenerator


def make_session(session_id, user_id, start, duration, exchange=0, content_id="a"):
    return Session(
        session_id=session_id,
        user_id=user_id,
        content_id=content_id,
        start=start,
        duration=duration,
        bitrate=1.5e6,
        attachment=AttachmentPoint(isp="ISP-1", pop=0, exchange=exchange),
    )


class TestConfigValidation:
    def test_participation_bounds(self):
        with pytest.raises(ValueError):
            SimulationConfig(participation_rate=-0.1)
        with pytest.raises(ValueError):
            SimulationConfig(participation_rate=1.1)

    def test_linger_bounds(self):
        with pytest.raises(ValueError):
            SimulationConfig(seed_linger_seconds=-1.0)

    def test_participates_deterministic(self):
        config = SimulationConfig(participation_rate=0.5)
        first = [config.participates(uid) for uid in range(100)]
        second = [config.participates(uid) for uid in range(100)]
        assert first == second

    def test_participates_extremes(self):
        all_in = SimulationConfig(participation_rate=1.0)
        none_in = SimulationConfig(participation_rate=0.0)
        assert all(all_in.participates(uid) for uid in range(50))
        assert not any(none_in.participates(uid) for uid in range(50))

    def test_participates_rate_approximate(self):
        config = SimulationConfig(participation_rate=0.3)
        share = sum(config.participates(uid) for uid in range(10_000)) / 10_000
        assert share == pytest.approx(0.3, abs=0.03)


class TestParticipationBehaviour:
    def test_zero_participation_no_peering(self):
        trace = Trace.from_sessions(
            [
                make_session(0, 1, 0.0, 600.0),
                make_session(1, 2, 0.0, 600.0, exchange=1),
            ]
        )
        result = simulate(trace, SimulationConfig(participation_rate=0.0))
        assert result.total.total_peer_bits == 0.0

    def test_non_participants_still_watch(self):
        trace = Trace.from_sessions([make_session(0, 1, 0.0, 600.0)])
        result = simulate(trace, SimulationConfig(participation_rate=0.0))
        assert result.per_user[1].watched_bits > 0.0
        assert result.per_user[1].uploaded_bits == 0.0

    def test_partial_participation_between_extremes(self):
        config = GeneratorConfig(
            num_users=800, num_items=40, days=2, expected_sessions=5_000, seed=53
        )
        trace = TraceGenerator(config=config).generate()
        g_none = simulate(trace, SimulationConfig(participation_rate=0.0)).offload_fraction()
        g_half = simulate(trace, SimulationConfig(participation_rate=0.5)).offload_fraction()
        g_full = simulate(trace, SimulationConfig(participation_rate=1.0)).offload_fraction()
        assert g_none == 0.0
        assert 0.0 < g_half < g_full

    def test_non_participants_never_upload(self):
        config = GeneratorConfig(
            num_users=400, num_items=20, days=1, expected_sessions=2_500, seed=54
        )
        trace = TraceGenerator(config=config).generate()
        sim_config = SimulationConfig(participation_rate=0.4)
        result = simulate(trace, sim_config)
        for uid, traffic in result.per_user.items():
            if not sim_config.participates(uid):
                assert traffic.uploaded_bits == 0.0


class TestLingerBehaviour:
    def test_cached_copy_serves_later_viewer(self):
        trace = Trace.from_sessions(
            [
                make_session(0, 1, 0.0, 600.0),
                make_session(1, 2, 700.0, 600.0, exchange=1),
            ]
        )
        plain = simulate(trace)
        cached = simulate(trace, SimulationConfig(seed_linger_seconds=1800.0))
        assert plain.offload_fraction() == 0.0
        assert cached.offload_fraction() == pytest.approx(0.5)

    def test_linger_shorter_than_gap_does_not_help(self):
        trace = Trace.from_sessions(
            [
                make_session(0, 1, 0.0, 600.0),
                make_session(1, 2, 1800.0, 600.0, exchange=1),
            ]
        )
        cached = simulate(trace, SimulationConfig(seed_linger_seconds=300.0))
        assert cached.offload_fraction() == 0.0

    def test_lingerer_not_counted_as_viewer(self):
        """Capacity counts watchers; a lingering seed is not watching."""
        trace = Trace.from_sessions([make_session(0, 1, 0.0, 600.0)])
        plain = simulate(trace)
        cached = simulate(trace, SimulationConfig(seed_linger_seconds=86_400.0 - 600.0))
        swarm_plain = next(iter(plain.per_swarm.values()))
        swarm_cached = next(iter(cached.per_swarm.values()))
        assert swarm_cached.capacity == pytest.approx(swarm_plain.capacity)

    def test_lingering_uploader_earns_credit(self):
        trace = Trace.from_sessions(
            [
                make_session(0, 1, 0.0, 600.0),
                make_session(1, 2, 700.0, 600.0, exchange=1),
            ]
        )
        result = simulate(trace, SimulationConfig(seed_linger_seconds=1800.0))
        assert result.per_user[1].uploaded_bits > 0.0
        assert result.per_user[2].uploaded_bits == 0.0

    def test_linger_with_no_participation_is_inert(self):
        trace = Trace.from_sessions(
            [
                make_session(0, 1, 0.0, 600.0),
                make_session(1, 2, 700.0, 600.0, exchange=1),
            ]
        )
        result = simulate(
            trace,
            SimulationConfig(seed_linger_seconds=1800.0, participation_rate=0.0),
        )
        assert result.offload_fraction() == 0.0

    def test_linger_increases_savings_on_real_workload(self):
        config = GeneratorConfig(
            num_users=600, num_items=30, days=2, expected_sessions=4_000, seed=55
        )
        trace = TraceGenerator(config=config).generate()
        plain = simulate(trace)
        cached = simulate(trace, SimulationConfig(seed_linger_seconds=3_600.0))
        assert cached.savings(VALANCIUS) > plain.savings(VALANCIUS)

    def test_conservation_holds_with_linger(self):
        config = GeneratorConfig(
            num_users=500, num_items=25, days=2, expected_sessions=3_000, seed=56
        )
        trace = TraceGenerator(config=config).generate()
        result = simulate(trace, SimulationConfig(seed_linger_seconds=1_200.0))
        total = result.total
        assert total.server_bits + total.total_peer_bits == pytest.approx(
            total.demanded_bits
        )
        uploaded = sum(u.uploaded_bits for u in result.per_user.values())
        assert uploaded == pytest.approx(total.total_peer_bits)
