"""Property test: run_swarm_multi == K x run_swarm, bit for bit.

The sweep kernel's contract handed to ``hypothesis``: for *any* swarm
(adversarial structure -- shared users, tying start times, lingering
seeds) and *any* config list (mixed upload ratios, bandwidth overrides,
participation rates, window sizes, matching flags), every output of
``run_swarm_multi`` equals the corresponding independent ``run_swarm``
output exactly -- float equality on every ledger field, every (ISP,
day) delta and every per-user delta.  ``hypothesis`` is an optional
dependency: the module skips when it is missing.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sim.engine import SimulationConfig
from repro.sim.kernel import SwarmTask, run_swarm, run_swarm_multi
from repro.sim.policies import SwarmKey
from repro.topology.nodes import intern_attachment
from repro.trace.events import SECONDS_PER_DAY, Session

LAW = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

HORIZON = 2 * SECONDS_PER_DAY

#: Small value spaces so examples collide on users and attachments --
#: the memo and the seed/fresh tie-breaks get real work.
_attachments = st.sampled_from(
    [
        intern_attachment("ISP-1", 0, 0),
        intern_attachment("ISP-1", 0, 1),
        intern_attachment("ISP-1", 1, 3),
        intern_attachment("ISP-2", 1, 5),
    ]
)

_session_bodies = st.tuples(
    st.integers(min_value=0, max_value=6),  # user_id (duplicates likely)
    st.integers(min_value=0, max_value=int(HORIZON) - 600),  # start (s)
    st.integers(min_value=60, max_value=900),  # duration (s)
    st.sampled_from([800_000.0, 1_500_000.0]),  # bitrate
    _attachments,
)

_configs = st.builds(
    SimulationConfig,
    upload_ratio=st.sampled_from([0.0, 0.2, 0.6, 1.0, 1.7]),
    upload_bandwidth=st.sampled_from([None, None, 1e6]),
    participation_rate=st.sampled_from([0.0, 0.35, 1.0]),
    seed_linger_seconds=st.sampled_from([0.0, 0.0, 180.0]),
    delta_tau=st.sampled_from([10.0, 30.0]),
    allow_cross_isp_matching=st.booleans(),
    locality_aware_matching=st.booleans(),
)


@st.composite
def swarm_tasks(draw):
    bodies = draw(st.lists(_session_bodies, min_size=1, max_size=16))
    sessions = sorted(
        (
            Session(
                session_id=index,
                user_id=user_id,
                content_id="item",
                start=float(start),
                duration=float(duration),
                bitrate=bitrate,
                attachment=attachment,
            )
            for index, (user_id, start, duration, bitrate, attachment) in enumerate(
                bodies
            )
        ),
        key=lambda s: (s.start, s.session_id),
    )
    return SwarmTask(
        key=SwarmKey(content_id="item"), sessions=tuple(sessions), horizon=HORIZON
    )


def assert_bitwise_equal(reference, candidate):
    a, b = reference.result.ledger, candidate.result.ledger
    assert (
        a.server_bits,
        a.peer_bits,
        a.demanded_bits,
        a.watch_seconds,
        a.sessions,
    ) == (b.server_bits, b.peer_bits, b.demanded_bits, b.watch_seconds, b.sessions)
    assert reference.result.capacity == candidate.result.capacity
    assert reference.per_isp_day.keys() == candidate.per_isp_day.keys()
    for key in reference.per_isp_day:
        x, y = reference.per_isp_day[key], candidate.per_isp_day[key]
        assert (x.server_bits, x.peer_bits, x.demanded_bits, x.watch_seconds) == (
            y.server_bits,
            y.peer_bits,
            y.demanded_bits,
            y.watch_seconds,
        )
    assert reference.per_user.keys() == candidate.per_user.keys()
    for user_id in reference.per_user:
        mine, theirs = reference.per_user[user_id], candidate.per_user[user_id]
        assert (mine.watched_bits, mine.uploaded_bits) == (
            theirs.watched_bits,
            theirs.uploaded_bits,
        )


class TestSweepKernelLaw:
    @LAW
    @given(task=swarm_tasks(), configs=st.lists(_configs, min_size=1, max_size=6))
    def test_multi_equals_independent_runs(self, task, configs):
        multi = run_swarm_multi(task, configs)
        assert len(multi.outputs) == len(configs)
        for config, output in zip(configs, multi.outputs):
            assert_bitwise_equal(run_swarm(task, config), output)
