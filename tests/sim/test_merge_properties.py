"""Property-based tests of the merge algebra behind the parallel runtime.

Every reduction path in the runtime (batched fold, streaming fold,
``from_partials``) rests on a small algebra: ByteLedger / UserTraffic /
SwarmResult merge pairwise, SimulationResult partials reduce in a
canonical order.  These tests state the laws directly and let
`hypothesis` hunt for counterexamples:

* merge associativity and commutativity (ByteLedger, UserTraffic),
* SwarmResult.combine associativity,
* ``from_partials`` invariance under permutation of arrival order,
* empty partials are an identity of the reduction,
* ``StreamingReducer`` equals the batched ``merge_outputs`` for every
  completion order.

Byte quantities are drawn as integer-valued floats (exact in binary
floating point, and closed under the sums these laws take), so the
exact-equality laws genuinely hold bit for bit; the one place the
algebra itself rounds (session-weighted mean durations divide) is
checked with a relative tolerance.  ``hypothesis`` is an optional
dependency: the whole module skips when it is missing.
"""

import math

import pytest

pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sim.accounting import ByteLedger
from repro.sim.kernel import SwarmOutput, merge_outputs
from repro.sim.policies import SwarmKey
from repro.sim.reduce import FootprintAccumulator, StreamingReducer
from repro.sim.results import SimulationResult, SwarmResult, UserTraffic
from repro.topology.layers import NetworkLayer

#: Acceptance criterion: >= 200 examples per law.
LAW = settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

HORIZON = 86_400.0
DELTA_TAU = 10.0
UPLOAD_RATIO = 1.0

#: Integer-valued floats: exactly representable, sums of thousands of
#: them stay < 2**53, so float addition over them is associative and
#: commutative *exactly* -- the laws below assert bitwise equality.
exact_bits = st.integers(min_value=0, max_value=2**40).map(float)

ledgers = st.builds(
    ByteLedger,
    server_bits=exact_bits,
    peer_bits=st.dictionaries(
        st.sampled_from(sorted(NetworkLayer, key=lambda l: l.value)),
        exact_bits,
        max_size=3,
    ),
    demanded_bits=exact_bits,
    watch_seconds=exact_bits,
    sessions=st.integers(min_value=0, max_value=10_000),
)

user_traffic = st.builds(
    UserTraffic, watched_bits=exact_bits, uploaded_bits=exact_bits
)

swarm_keys = st.builds(
    SwarmKey,
    content_id=st.sampled_from([f"content-{i}" for i in range(6)]),
    isp=st.sampled_from([None, "ISP-1", "ISP-2"]),
    bitrate_class=st.sampled_from([None, "1.50Mbps"]),
)

swarm_results = st.builds(
    SwarmResult,
    key=swarm_keys,
    ledger=ledgers,
    capacity=exact_bits,
    arrival_rate=exact_bits,
    mean_duration=st.integers(min_value=0, max_value=10_000).map(float),
)

swarm_outputs = st.builds(
    SwarmOutput,
    result=swarm_results,
    per_isp_day=st.dictionaries(
        st.tuples(st.sampled_from(["ISP-1", "ISP-2", "all"]), st.integers(0, 3)),
        ledgers,
        max_size=3,
    ),
    per_user=st.dictionaries(
        st.integers(min_value=0, max_value=40), user_traffic, max_size=4
    ),
)

output_lists = st.lists(swarm_outputs, min_size=1, max_size=6)


def make_partial(outputs):
    """A self-consistent SimulationResult from generated swarm outputs."""
    return merge_outputs(
        outputs, delta_tau=DELTA_TAU, horizon=HORIZON, upload_ratio=UPLOAD_RATIO
    )


partials = output_lists.map(make_partial)

empty_partial = st.just(None).map(
    lambda _: SimulationResult(
        total=ByteLedger(),
        per_swarm={},
        per_isp_day={},
        per_user={},
        delta_tau=DELTA_TAU,
        horizon=HORIZON,
        upload_ratio=UPLOAD_RATIO,
    )
)


def assert_ledgers_equal(a: ByteLedger, b: ByteLedger):
    assert a.server_bits == b.server_bits
    assert a.peer_bits == b.peer_bits
    assert a.demanded_bits == b.demanded_bits
    assert a.watch_seconds == b.watch_seconds
    assert a.sessions == b.sessions


class TestByteLedgerLaws:
    @LAW
    @given(a=ledgers, b=ledgers, c=ledgers)
    def test_merge_associative(self, a, b, c):
        left = ByteLedger.merged([ByteLedger.merged([a, b]), c])
        right = ByteLedger.merged([a, ByteLedger.merged([b, c])])
        assert_ledgers_equal(left, right)

    @LAW
    @given(a=ledgers, b=ledgers)
    def test_merge_commutative(self, a, b):
        assert_ledgers_equal(ByteLedger.merged([a, b]), ByteLedger.merged([b, a]))

    @LAW
    @given(a=ledgers)
    def test_empty_ledger_is_identity(self, a):
        assert_ledgers_equal(ByteLedger.merged([a, ByteLedger()]), a.copy())
        assert_ledgers_equal(ByteLedger.merged([ByteLedger(), a]), a.copy())

    @LAW
    @given(a=ledgers, b=ledgers)
    def test_merge_never_mutates_source(self, a, b):
        snapshot = b.copy()
        a.copy().merge(b)
        assert_ledgers_equal(b, snapshot)


class TestUserTrafficLaws:
    @LAW
    @given(a=user_traffic, b=user_traffic, c=user_traffic)
    def test_merge_associative(self, a, b, c):
        left = a.copy()
        left.merge(b)
        left.merge(c)
        bc = b.copy()
        bc.merge(c)
        right = a.copy()
        right.merge(bc)
        assert left.watched_bits == right.watched_bits
        assert left.uploaded_bits == right.uploaded_bits

    @LAW
    @given(a=user_traffic, b=user_traffic)
    def test_merge_commutative(self, a, b):
        ab = a.copy()
        ab.merge(b)
        ba = b.copy()
        ba.merge(a)
        assert ab.watched_bits == ba.watched_bits
        assert ab.uploaded_bits == ba.uploaded_bits


class TestSwarmResultLaws:
    @LAW
    @given(a=swarm_results, b=swarm_results, c=swarm_results)
    def test_combine_associative(self, a, b, c):
        key = SwarmKey(content_id="combined")
        left = SwarmResult.combine(key, [SwarmResult.combine(key, [a, b]), c])
        right = SwarmResult.combine(key, [a, SwarmResult.combine(key, [b, c])])
        assert_ledgers_equal(left.ledger, right.ledger)
        assert left.capacity == right.capacity
        assert left.arrival_rate == right.arrival_rate
        # The one genuinely rounding step in the algebra: the
        # session-weighted mean divides, so regrouping may differ in
        # the last ulp.
        assert math.isclose(
            left.mean_duration, right.mean_duration, rel_tol=1e-9, abs_tol=1e-9
        )


class TestFromPartialsLaws:
    @LAW
    @given(parts=st.lists(partials, min_size=1, max_size=5), rng=st.randoms())
    def test_invariant_under_permutation(self, parts, rng):
        reference = SimulationResult.from_partials(parts)
        shuffled = list(parts)
        rng.shuffle(shuffled)
        assert SimulationResult.from_partials(shuffled).identical_to(reference)

    @LAW
    @given(parts=st.lists(partials, min_size=1, max_size=4), empty=empty_partial)
    def test_empty_partial_is_identity(self, parts, empty):
        reference = SimulationResult.from_partials(parts)
        padded = SimulationResult.from_partials(parts + [empty])
        assert padded.identical_to(reference)

    @LAW
    @given(parts=st.lists(partials, min_size=2, max_size=4))
    def test_reduction_does_not_mutate_partials(self, parts):
        snapshots = [
            (p.total.server_bits, dict(p.per_user), dict(p.per_swarm)) for p in parts
        ]
        SimulationResult.from_partials(parts)
        for partial, (server_bits, per_user, per_swarm) in zip(parts, snapshots):
            assert partial.total.server_bits == server_bits
            assert partial.per_user.keys() == per_user.keys()
            assert partial.per_swarm.keys() == per_swarm.keys()


class TestStreamingReducerLaws:
    @LAW
    @given(outputs=output_lists, rng=st.randoms())
    def test_any_completion_order_equals_batched(self, outputs, rng):
        """The tentpole law: StreamingReducer(outputs) == from-batched
        merge for *every* permutation of completion order."""
        reference = make_partial(outputs)
        order = list(range(len(outputs)))
        rng.shuffle(order)
        reducer = StreamingReducer(
            delta_tau=DELTA_TAU, horizon=HORIZON, upload_ratio=UPLOAD_RATIO
        )
        for index in order:
            reducer.add(index, [outputs[index]])
        assert reducer.result().identical_to(reference)

    @LAW
    @given(outputs=output_lists, rng=st.randoms())
    def test_footprint_accumulator_matches_dict_fold(self, outputs, rng):
        reference = make_partial(outputs)
        order = list(range(len(outputs)))
        rng.shuffle(order)
        reducer = StreamingReducer(
            delta_tau=DELTA_TAU,
            horizon=HORIZON,
            upload_ratio=UPLOAD_RATIO,
            users=FootprintAccumulator(),
        )
        for index in order:
            reducer.add(index, [outputs[index]])
        result = reducer.result()
        assert result.identical_to(reference)
        assert result.per_user.keys() == reference.per_user.keys()
        for uid, traffic in reference.per_user.items():
            assert result.per_user[uid].watched_bits == traffic.watched_bits
            assert result.per_user[uid].uploaded_bits == traffic.uploaded_bits
