"""Chaos soak: seeded fault plans against the full distributed stack.

Each seed derives a :func:`repro.sim.faults.chaos_plan` -- a mixed
schedule of torn writes, ENOSPC/EIO, rename-visibility delays, clock
skew and crash points -- and the suite asserts the strongest property
the runtime claims: a distributed run and a service-mode run *under
injected faults* complete and are **bit for bit** identical to the
clean serial baseline, and every fault schedule is replayable from its
seed alone.
"""

import json
import threading

import pytest

from repro.sim import SimulationConfig, Simulator
from repro.sim import faults
from repro.sim.backends import DistributedBackend, SerialBackend
from repro.sim.faults import InjectedCrash, chaos_plan
from repro.sim.queue import WorkQueue
from repro.sim.service import JsonlSink, ServiceConfig, SimulationService
from repro.sim.worker import run_worker
from repro.trace.events import SECONDS_PER_DAY
from repro.trace.generator import GeneratorConfig, TraceGenerator

SEEDS = list(range(20))

#: Fault rules fire real retries and lease recoveries, so allow the
#: coordinator more bounces than a clean run would ever need.
MAX_ATTEMPTS = 20


@pytest.fixture(autouse=True)
def clean_facade():
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture(scope="module")
def trace():
    config = GeneratorConfig(
        num_users=80, num_items=8, days=1, expected_sessions=400, seed=11
    )
    return TraceGenerator(config=config).generate()


@pytest.fixture(scope="module")
def serial_baseline(trace):
    """Computed once, before any plan is ever installed."""
    return Simulator(SimulationConfig(), backend=SerialBackend()).run(trace)


def run_distributed_under(plan, trace, queue_root):
    """One distributed run with ``plan`` installed process-wide.

    Workers run as in-process threads under a supervisor that treats
    :class:`InjectedCrash` as a worker-process death and respawns, so
    crash points exercise the same lease-expiry recovery a SIGKILL
    would -- deterministically and without subprocess plumbing.
    """
    backend = DistributedBackend(
        2,
        queue_dir=queue_root,
        spawn=False,
        lease_timeout=0.5,
        poll_interval=0.01,
        shard_quantum=40,
        progress_timeout=120.0,
        max_attempts=MAX_ATTEMPTS,
        compact_every=8,
    )

    def supervised_worker(ordinal):
        while True:
            try:
                run_worker(
                    queue_root,
                    poll_interval=0.01,
                    lease_timeout=0.5,
                    worker_id=f"chaos-{ordinal}",
                )
                return  # STOP file: clean shutdown
            except InjectedCrash:
                continue  # the "process" died mid-item; respawn

    threads = [
        threading.Thread(target=supervised_worker, args=(i,)) for i in range(2)
    ]
    with faults.injected(plan):
        for thread in threads:
            thread.start()
        try:
            result = Simulator(SimulationConfig(), backend=backend).run(trace)
        finally:
            (queue_root / "STOP").touch()
            for thread in threads:
                thread.join(timeout=60.0)
            backend.close()
    return result


def run_service_under(plan, trace, config, state_dir):
    """One service run with ``plan`` installed, restarting over the
    same state dir whenever an injected crash point kills it -- the
    checkpointed-resume path under fire."""
    sink_path = state_dir / "out.jsonl"
    with faults.injected(plan):
        for _ in range(10):  # far more restarts than crash rules can force
            service = SimulationService(
                config, state_dir, subscribers=[JsonlSink(sink_path)]
            )
            try:
                service.run(iter(trace.sessions[service.cursor :]))
                cumulative = service.result()
                service.close()
                return cumulative, sink_path
            except InjectedCrash:
                service.close()
    raise AssertionError("service never completed within the restart budget")


class TestDistributedChaos:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_identical_to_serial_under_faults(
        self, trace, serial_baseline, tmp_path, seed
    ):
        plan = chaos_plan(seed, crash_mode="raise")
        queue_root = tmp_path / "queue"
        result = run_distributed_under(plan, trace, queue_root)
        assert result.identical_to(serial_baseline)
        assert result.total.server_bits == serial_baseline.total.server_bits
        assert result.total.peer_bits == serial_baseline.total.peer_bits
        # No unretired work: every item of every job ended acked.
        for job_dir in queue_root.glob("job-*"):
            queue = WorkQueue(job_dir, lease_timeout=0.5, create=False)
            assert queue.pending_ids() == set()
            assert queue.claimed_ids() == set()
            assert queue.failed_items() == {}


class TestServiceChaos:
    @pytest.fixture(scope="class")
    def service_config(self, trace):
        # Several short epochs, so the crash points (scheduled on the
        # second invocation) actually land mid-stream.
        return ServiceConfig(
            simulation=SimulationConfig(),
            epoch_seconds=SECONDS_PER_DAY / 4,
            horizon=trace.horizon,
        )

    @pytest.fixture(scope="class")
    def batch_result(self, trace, service_config):
        return Simulator(service_config.scoped_config).run(trace)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_identical_to_batch_under_faults(
        self, trace, service_config, batch_result, tmp_path, seed
    ):
        plan = chaos_plan(seed, crash_mode="raise")
        cumulative, sink_path = run_service_under(
            plan, trace, service_config, tmp_path
        )
        assert cumulative.identical_to(batch_result)
        # The sink holds every epoch exactly once, in order, despite
        # torn appends, ENOSPC and crash-before-checkpoint restarts.
        epochs = [
            json.loads(line)["epoch"]
            for line in sink_path.read_text().splitlines()
        ]
        assert epochs == sorted(set(epochs))
        assert epochs[0] == 0


class TestReplayability:
    def test_same_seed_same_faults_same_bytes(
        self, trace, tmp_path, batch_seed=13
    ):
        """A chaos run is replayable from its seed alone: two service
        runs under the same seed fire the identical fault schedule and
        produce byte-identical sinks."""
        config = ServiceConfig(
            simulation=SimulationConfig(),
            epoch_seconds=SECONDS_PER_DAY / 4,
            horizon=trace.horizon,
        )
        histories, sinks = [], []
        for attempt in ("first", "second"):
            plan = chaos_plan(batch_seed, crash_mode="raise")
            state_dir = tmp_path / attempt
            state_dir.mkdir()
            _, sink_path = run_service_under(plan, trace, config, state_dir)
            histories.append(tuple(plan.fired))
            sinks.append(sink_path.read_bytes())
        assert histories[0] == histories[1]
        assert sinks[0] == sinks[1]

    def test_plan_serializes_for_postmortem_replay(self):
        """The JSON shipped to workers reconstructs the exact plan."""
        plan = chaos_plan(7, crash_mode="raise")
        revived = faults.FaultPlan.from_json(plan.to_json())
        assert revived.seed == plan.seed
        assert revived.rules == plan.rules
        sites = [rule.site for rule in plan.rules]
        for site in sites:
            assert [plan.decide(site) for _ in range(20)] == [
                revived.decide(site) for _ in range(20)
            ]
