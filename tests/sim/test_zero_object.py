"""The zero-object ingest law: extent refs == resident-object tasks.

The zero-object path (``schedule_from_ref`` / ``run_ref``) builds the
packed columnar schedule straight from a shard extent's raw 56-byte
records -- through the fused C decoder when built, through typed
stdlib-array columns otherwise -- without ever materialising a
``Session``.  Its contract is *byte* equality: the packed columns must
be identical to what the object-path builder
(``ColumnSchedule(task, config)``) packs from resident sessions, and
the swept outputs must be bit-for-bit the object kernel's.

``hypothesis`` drives adversarial stores at the contract: duplicate
users, window-boundary starts, sub-window durations, multi-ISP
attachments, lingering seeds (which the fused decoder must decline
into the column fallback).  A subprocess check pins the fused C
decoder against a ``REPRO_NO_CKERNEL=1`` interpreter, so compiled and
pure-python installs are provably interchangeable at the store-file
boundary.

``hypothesis`` is an optional dependency: the module skips without it.
"""

import hashlib
import itertools
import os
import subprocess
import sys
import tempfile
from contextlib import contextmanager
from dataclasses import replace

import pytest

pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sim import kernel_columns
from repro.sim.engine import SimulationConfig
from repro.sim.grouping import ExtentTaskRef
from repro.sim.kernel import SwarmTask, run_ref, run_ref_multi, run_swarm_object
from repro.sim.kernel_columns import ColumnSchedule, schedule_from_ref
from repro.sim.policies import SwarmKey
from repro.topology.nodes import intern_attachment
from repro.trace.events import SECONDS_PER_DAY, Session
from repro.trace.store import StoreWriter, clear_reader_cache

LAW = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

HORIZON = 2 * SECONDS_PER_DAY


@contextmanager
def _no_compiled_backend():
    """Mask the compiled backend so the pure-python columnar path runs."""
    saved = kernel_columns._ckernel
    kernel_columns._ckernel = None
    try:
        yield
    finally:
        kernel_columns._ckernel = saved


def assert_bitwise_identical(reference, candidate):
    """Bit-for-bit output equality, dict insertion orders included."""
    a, b = reference.result.ledger, candidate.result.ledger
    assert (
        a.server_bits,
        a.demanded_bits,
        a.watch_seconds,
        a.sessions,
    ) == (b.server_bits, b.demanded_bits, b.watch_seconds, b.sessions)
    assert list(a.peer_bits.items()) == list(b.peer_bits.items())
    assert reference.result.capacity == candidate.result.capacity
    assert reference.result.arrival_rate == candidate.result.arrival_rate
    assert reference.result.mean_duration == candidate.result.mean_duration
    assert list(reference.per_isp_day.keys()) == list(candidate.per_isp_day.keys())
    for key in reference.per_isp_day:
        x, y = reference.per_isp_day[key], candidate.per_isp_day[key]
        assert (x.server_bits, x.demanded_bits, x.watch_seconds) == (
            y.server_bits,
            y.demanded_bits,
            y.watch_seconds,
        )
        assert list(x.peer_bits.items()) == list(y.peer_bits.items())
    assert list(reference.per_user.keys()) == list(candidate.per_user.keys())
    for user_id in reference.per_user:
        mine, theirs = reference.per_user[user_id], candidate.per_user[user_id]
        assert (mine.watched_bits, mine.uploaded_bits) == (
            theirs.watched_bits,
            theirs.uploaded_bits,
        )

_attachments = st.sampled_from(
    [
        intern_attachment("ISP-1", 0, 0),
        intern_attachment("ISP-1", 0, 1),
        intern_attachment("ISP-1", 1, 3),
        intern_attachment("ISP-2", 1, 5),
    ]
)

_starts = st.one_of(
    st.integers(min_value=0, max_value=int(HORIZON) - 1000),
    st.builds(lambda k: k * 60, st.integers(min_value=0, max_value=2000)),
)

_session_bodies = st.tuples(
    st.integers(min_value=0, max_value=6),  # user_id (duplicates likely)
    _starts,
    st.sampled_from([1, 7, 60, 120, 601]),  # duration: sub-window to multi
    st.sampled_from([800_000.0, 1_500_000.0]),  # bitrate
    _attachments,
)

_configs = st.builds(
    SimulationConfig,
    upload_ratio=st.sampled_from([0.0, 0.2, 0.6, 1.0, 1.7]),
    upload_bandwidth=st.sampled_from([None, None, 1e6]),
    participation_rate=st.sampled_from([0.0, 0.35, 1.0]),
    seed_linger_seconds=st.sampled_from([0.0, 0.0, 180.0]),
    delta_tau=st.sampled_from([10.0, 30.0, 60.0]),
    allow_cross_isp_matching=st.booleans(),
)


@st.composite
def swarm_tasks(draw):
    bodies = draw(st.lists(_session_bodies, min_size=1, max_size=16))
    sessions = sorted(
        (
            Session(
                session_id=index,
                user_id=user_id,
                content_id="item",
                start=float(start),
                duration=float(duration),
                bitrate=bitrate,
                attachment=attachment,
            )
            for index, (user_id, start, duration, bitrate, attachment) in enumerate(
                bodies
            )
        ),
        key=lambda s: (s.start, s.session_id),
    )
    return SwarmTask(
        key=SwarmKey(content_id="item"), sessions=tuple(sessions), horizon=HORIZON
    )


_store_counter = itertools.count()
_store_dir = tempfile.TemporaryDirectory(prefix="zero-object-stores-")


def _store_ref(task: SwarmTask) -> ExtentTaskRef:
    """Persist a task's sessions to a fresh store; hand back its extent.

    Fresh path per call: the shared reader cache is keyed by path, so
    reusing one would serve a previous example's records.
    """
    path = os.path.join(_store_dir.name, f"task-{next(_store_counter)}.store")
    with StoreWriter(path, horizon=task.horizon) as writer:
        for session in task.sessions:
            writer.append(session)
    return ExtentTaskRef(
        path=path,
        index=0,
        count=len(task.sessions),
        key=task.key,
        horizon=task.horizon,
    )


@pytest.fixture(scope="module", autouse=True)
def _clean_readers():
    yield
    clear_reader_cache()


def _schedule_bytes(schedule: ColumnSchedule) -> bytes:
    """Everything the sweep consumes, as one comparable byte string."""
    digest = hashlib.sha256()
    for buffer in schedule.packed():
        digest.update(bytes(buffer))
    digest.update(
        repr(
            (
                schedule.slot_users,
                schedule.num_users,
                schedule.num_ex,
                schedule.num_pop,
                schedule.num_isp,
                schedule.num_days,
                schedule.mean_duration,
            )
        ).encode()
    )
    return digest.digest()


class TestPackedEqualityLaw:
    @LAW
    @given(task=swarm_tasks(), config=_configs)
    def test_ref_schedule_packs_object_schedule(self, task, config):
        """Extent -> columns packing is byte-equal to object-path packing."""
        ref = _store_ref(task)
        assert _schedule_bytes(schedule_from_ref(ref, config)) == _schedule_bytes(
            ColumnSchedule(task, config)
        )

    @LAW
    @given(task=swarm_tasks(), config=_configs)
    def test_ref_schedule_packs_object_schedule_pure_python(self, task, config):
        """The same law with the compiled module masked off entirely."""
        ref = _store_ref(task)
        with _no_compiled_backend():
            assert _schedule_bytes(
                schedule_from_ref(ref, config)
            ) == _schedule_bytes(ColumnSchedule(task, config))


class TestZeroObjectOutputs:
    @LAW
    @given(task=swarm_tasks(), config=_configs)
    def test_run_ref_equals_object_kernel(self, task, config):
        ref = _store_ref(task)
        assert_bitwise_identical(
            run_swarm_object(task, config), run_ref(ref, config)
        )

    @LAW
    @given(task=swarm_tasks(), configs=st.lists(_configs, min_size=1, max_size=3))
    def test_run_ref_multi_equals_object_runs(self, task, configs):
        configs = [replace(config, kernel="columnar") for config in configs]
        ref = _store_ref(task)
        multi = run_ref_multi(ref, configs)
        assert len(multi.outputs) == len(configs)
        assert multi.schedule_builds >= 1
        for config, output in zip(configs, multi.outputs):
            assert_bitwise_identical(run_swarm_object(task, config), output)

    def test_object_kernel_config_resolves_the_task(self):
        """kernel="object" on a ref decodes and runs the reference kernel."""
        task = SwarmTask(
            key=SwarmKey(content_id="item"),
            sessions=(
                Session(
                    session_id=0,
                    user_id=1,
                    content_id="item",
                    start=30.0,
                    duration=120.0,
                    bitrate=1_000_000.0,
                    attachment=intern_attachment("ISP-1", 0, 0),
                ),
            ),
            horizon=HORIZON,
        )
        ref = _store_ref(task)
        config = SimulationConfig(kernel="object")
        assert_bitwise_identical(
            run_swarm_object(task, config), run_ref(ref, config)
        )


@pytest.mark.skipif(
    not kernel_columns.HAVE_COMPILED, reason="compiled kernel not built"
)
class TestFusedDecoder:
    def _deterministic_task(self) -> SwarmTask:
        """200 sessions with colliding users, windows and attachments."""
        attachments = [
            intern_attachment("ISP-1", 0, 0),
            intern_attachment("ISP-1", 1, 3),
            intern_attachment("ISP-2", 1, 5),
        ]
        sessions = sorted(
            (
                Session(
                    session_id=index,
                    user_id=(index * 7) % 23,
                    content_id="item",
                    start=float((index * 977) % int(HORIZON - 2000)),
                    duration=float(1 + (index * 13) % 700),
                    bitrate=[800_000.0, 1_500_000.0][index % 2],
                    attachment=attachments[index % 3],
                )
                for index in range(200)
            ),
            key=lambda s: (s.start, s.session_id),
        )
        return SwarmTask(
            key=SwarmKey(content_id="item"),
            sessions=tuple(sessions),
            horizon=HORIZON,
        )

    def test_fused_decode_matches_no_ckernel_subprocess(self):
        """The fused C decoder equals a REPRO_NO_CKERNEL=1 interpreter.

        The strongest interchangeability statement: a compiled install
        and a pure-python install, separated by a process boundary,
        derive identical packed schedules from the same store file.
        """
        task = self._deterministic_task()
        ref = _store_ref(task)
        schedule = schedule_from_ref(ref, SimulationConfig())
        assert schedule.native, "fused decoder unexpectedly declined"
        code = (
            "import hashlib\n"
            "from repro.sim.engine import SimulationConfig\n"
            "from repro.sim.grouping import ExtentTaskRef\n"
            "from repro.sim.kernel_columns import HAVE_COMPILED, schedule_from_ref\n"
            "from repro.sim.policies import SwarmKey\n"
            "assert not HAVE_COMPILED\n"
            f"ref = ExtentTaskRef(path={ref.path!r}, index=0, "
            f"count={ref.count}, key=SwarmKey(content_id='item'), "
            f"horizon={ref.horizon!r})\n"
            "schedule = schedule_from_ref(ref, SimulationConfig())\n"
            "digest = hashlib.sha256()\n"
            "for buffer in schedule.packed():\n"
            "    digest.update(bytes(buffer))\n"
            "digest.update(repr((schedule.slot_users, schedule.num_users, "
            "schedule.num_ex, schedule.num_pop, schedule.num_isp, "
            "schedule.num_days, schedule.mean_duration)).encode())\n"
            "print(digest.hexdigest())\n"
        )
        env = dict(os.environ, REPRO_NO_CKERNEL="1")
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == _schedule_bytes(schedule).hex()

    def test_fused_decoder_declines_lingering_seeds(self):
        """Seed linger needs participation identity -> the column path."""
        task = self._deterministic_task()
        ref = _store_ref(task)
        config = SimulationConfig(
            seed_linger_seconds=180.0, participation_rate=0.35
        )
        schedule = schedule_from_ref(ref, config)
        assert not schedule.native
        assert _schedule_bytes(schedule) == _schedule_bytes(
            ColumnSchedule(task, config)
        )
