"""Sweep equivalence: run_swarm_multi / run_sweep == K independent runs.

The sweep runtime's whole contract is "bit-for-bit identical to the
K-independent-runs baseline, just cheaper".  This module pins that
contract at every level:

* kernel: ``run_swarm_multi`` vs K x ``run_swarm`` (hypothesis property
  over adversarial random swarms and config mixes -- shared users, ties,
  lingering seeds, mixed delta_tau / participation / matching flags);
* matching: ``match_window_multi`` vs per-profile ``match_window``;
* engine: ``Simulator.run_sweep`` / ``run_sweep_stream`` vs per-config
  ``run``, plus validation and :class:`~repro.sim.engine.SweepStats`;
* the hot slots types pickle-round-trip (they cross process boundaries
  inside every sweep shard).
"""

import pickle

import pytest

from repro.sim import SimulationConfig, Simulator, SweepStats
from repro.sim.accounting import ByteLedger
from repro.sim.kernel import (
    MultiSwarmOutput,
    SwarmTask,
    build_tasks,
    run_shard_multi,
    run_swarm,
    run_swarm_multi,
)
from repro.sim.matching import PeerState, WindowAllocation, match_window, match_window_multi
from repro.sim.policies import SwarmPolicy
from repro.sim.results import UserTraffic
from repro.topology.layers import NetworkLayer
from repro.trace.generator import GeneratorConfig, TraceGenerator


@pytest.fixture(scope="module")
def trace():
    config = GeneratorConfig(
        num_users=250, num_items=20, days=2, expected_sessions=2_000, seed=77
    )
    return TraceGenerator(config=config).generate()


#: A deliberately heterogeneous sweep: ratio axis, participation axis,
#: bandwidth override, lingering seeds, a different window size, the
#: locality ablation and the cross-ISP matching phase.
SWEEP_CONFIGS = [
    SimulationConfig(upload_ratio=0.2),
    SimulationConfig(upload_ratio=0.6),
    SimulationConfig(upload_ratio=1.0),
    SimulationConfig(upload_ratio=0.5, participation_rate=0.35),
    SimulationConfig(upload_bandwidth=2e6),
    SimulationConfig(seed_linger_seconds=120.0, participation_rate=0.5),
    SimulationConfig(delta_tau=30.0),
    SimulationConfig(locality_aware_matching=False),
    SimulationConfig(participation_rate=0.0),
]


def assert_output_identical(reference, candidate, context=""):
    """Exact equality of two SwarmOutputs at every accounting level."""
    a, b = reference.result.ledger, candidate.result.ledger
    assert (
        a.server_bits,
        a.peer_bits,
        a.demanded_bits,
        a.watch_seconds,
        a.sessions,
    ) == (b.server_bits, b.peer_bits, b.demanded_bits, b.watch_seconds, b.sessions), context
    assert reference.result.capacity == candidate.result.capacity, context
    assert reference.result.arrival_rate == candidate.result.arrival_rate, context
    assert reference.result.mean_duration == candidate.result.mean_duration, context
    assert reference.per_isp_day.keys() == candidate.per_isp_day.keys(), context
    for key in reference.per_isp_day:
        x, y = reference.per_isp_day[key], candidate.per_isp_day[key]
        assert (x.server_bits, x.peer_bits, x.demanded_bits, x.watch_seconds) == (
            y.server_bits,
            y.peer_bits,
            y.demanded_bits,
            y.watch_seconds,
        ), (context, key)
    assert reference.per_user.keys() == candidate.per_user.keys(), context
    for user_id in reference.per_user:
        mine, theirs = reference.per_user[user_id], candidate.per_user[user_id]
        assert (mine.watched_bits, mine.uploaded_bits) == (
            theirs.watched_bits,
            theirs.uploaded_bits,
        ), (context, user_id)


class TestKernelSweepEquivalence:
    def test_multi_matches_independent_runs(self, trace):
        tasks = build_tasks(trace, trace.horizon, SimulationConfig().policy)
        for task in tasks:
            multi = run_swarm_multi(task, SWEEP_CONFIGS)
            assert len(multi.outputs) == len(SWEEP_CONFIGS)
            for position, config in enumerate(SWEEP_CONFIGS):
                assert_output_identical(
                    run_swarm(task, config),
                    multi.outputs[position],
                    context=(str(task.key), position),
                )

    def test_run_shard_multi_preserves_task_order(self, trace):
        config = SimulationConfig()
        tasks = build_tasks(trace, trace.horizon, config.policy)[:5]
        configs = [SimulationConfig(upload_ratio=r) for r in (0.3, 0.9)]
        multis = run_shard_multi(tasks, configs)
        assert len(multis) == len(tasks)
        for task, multi in zip(tasks, multis):
            assert multi.outputs[0].result.key == task.key

    def test_empty_config_list(self, trace):
        task = build_tasks(trace, trace.horizon, SimulationConfig().policy)[0]
        multi = run_swarm_multi(task, [])
        assert multi.outputs == []
        assert multi.schedule_builds == 0

    def test_schedule_sharing_counts(self, trace):
        """Same-signature configs share one schedule; distinct ones don't."""
        task = build_tasks(trace, trace.horizon, SimulationConfig().policy)[0]
        ratios_only = [SimulationConfig(upload_ratio=r) for r in (0.2, 0.5, 1.0)]
        assert run_swarm_multi(task, ratios_only).schedule_builds == 1
        mixed = ratios_only + [SimulationConfig(delta_tau=30.0)]
        assert run_swarm_multi(task, mixed).schedule_builds == 2

    def test_memo_stats_are_sane(self, trace):
        # kernel="object" pins the object multi-kernel: the allocation
        # memo only applies there (columnar sweeps report 0/0).
        tasks = build_tasks(trace, trace.horizon, SimulationConfig().policy)
        configs = [
            SimulationConfig(upload_ratio=r, kernel="object") for r in (0.2, 0.6, 1.0)
        ]
        hits = misses = 0
        for task in tasks:
            multi = run_swarm_multi(task, configs)
            assert multi.memo_hits >= 0 and multi.memo_misses >= 0
            hits += multi.memo_hits
            misses += multi.memo_misses
        assert misses > 0  # something was actually solved


class TestMatchWindowMulti:
    def _members(self):
        return [
            PeerState(member_id=1, user_id=10, demand=100.0, supply=0.0, exchange=0, pop=0, isp="A"),
            PeerState(member_id=2, user_id=11, demand=100.0, supply=0.0, exchange=0, pop=0, isp="A"),
            PeerState(member_id=3, user_id=12, demand=50.0, supply=0.0, exchange=1, pop=0, isp="A"),
            PeerState(member_id=4, user_id=13, demand=80.0, supply=0.0, exchange=2, pop=1, isp="B"),
            PeerState(member_id=5, user_id=14, demand=0.0, supply=0.0, exchange=1, pop=0, isp="A"),
        ]

    @pytest.mark.parametrize("allow_cross_isp", [False, True])
    @pytest.mark.parametrize("locality_aware", [False, True])
    def test_profiles_match_independent_calls(self, allow_cross_isp, locality_aware):
        base = self._members()
        profiles = [
            [20.0, 0.0, 120.0, 40.0, 65.0],
            [0.0, 0.0, 0.0, 0.0, 0.0],
            [100.0, 100.0, 100.0, 100.0, 100.0],
            [5.0, 250.0, 0.5, 1e-12, 30.0],
        ]
        solved = match_window_multi(
            base,
            profiles,
            allow_cross_isp=allow_cross_isp,
            locality_aware=locality_aware,
        )
        assert len(solved) == len(profiles)
        for profile, multi_allocation in zip(profiles, solved):
            members = [
                PeerState(
                    member_id=m.member_id,
                    user_id=m.user_id,
                    demand=m.demand,
                    supply=supply,
                    exchange=m.exchange,
                    pop=m.pop,
                    isp=m.isp,
                )
                for m, supply in zip(base, profile)
            ]
            single = match_window(
                members,
                allow_cross_isp=allow_cross_isp,
                locality_aware=locality_aware,
            )
            assert multi_allocation.server_bits == single.server_bits
            assert multi_allocation.demanded_bits == single.demanded_bits
            assert multi_allocation.peer_bits == single.peer_bits
            assert multi_allocation.uploaded_bits == single.uploaded_bits

    def test_empty_members_and_profiles(self):
        assert match_window_multi([], []) == []
        allocations = match_window_multi([], [[], []])
        assert len(allocations) == 2
        assert all(a.demanded_bits == 0.0 for a in allocations)

    def test_single_member(self):
        member = PeerState(member_id=1, user_id=5, demand=42.0, supply=0.0,
                           exchange=0, pop=0, isp="A")
        allocations = match_window_multi([member], [[10.0], [99.0]])
        for allocation in allocations:
            assert allocation.server_bits == 42.0
            assert allocation.demanded_bits == 42.0
            assert allocation.peer_bits == {}


class TestSimulatorSweep:
    def test_run_sweep_matches_independent_runs(self, trace):
        configs = [SimulationConfig(upload_ratio=r) for r in (0.2, 0.4, 0.6, 0.8, 1.0)]
        baseline = [Simulator(config).run(trace) for config in configs]
        simulator = Simulator(configs[0])
        swept = simulator.run_sweep(trace, configs)
        assert len(swept) == len(configs)
        for reference, result in zip(baseline, swept):
            assert reference.identical_to(result)

    def test_run_sweep_stream_matches_run_sweep(self, trace):
        configs = [SimulationConfig(upload_ratio=r) for r in (0.3, 0.9)]
        simulator = Simulator(configs[0])
        from_trace = simulator.run_sweep(trace, configs)
        from_stream = simulator.run_sweep_stream(
            iter(trace.sessions), trace.horizon, configs
        )
        for a, b in zip(from_trace, from_stream):
            assert a.identical_to(b)

    def test_heterogeneous_sweep(self, trace):
        baseline = [Simulator(config).run(trace) for config in SWEEP_CONFIGS]
        swept = Simulator(SWEEP_CONFIGS[0]).run_sweep(trace, SWEEP_CONFIGS)
        for reference, result in zip(baseline, swept):
            assert reference.identical_to(result)

    def test_sweep_stats_reported(self, trace):
        configs = [SimulationConfig(upload_ratio=r) for r in (0.2, 0.6, 1.0)]
        simulator = Simulator(configs[0])
        simulator.run_sweep(trace, configs)
        stats = simulator.last_sweep
        assert isinstance(stats, SweepStats)
        assert stats.configs == 3
        assert stats.tasks == len(
            build_tasks(trace, trace.horizon, configs[0].policy)
        )
        assert 0.0 <= stats.memo_hit_rate <= 1.0
        # One schedule per task for a pure ratio sweep -- the whole point.
        assert stats.schedule_builds == stats.tasks
        assert stats.cache_hit is None  # memory grouping: no cache in play

    def test_single_config_sweep(self, trace):
        config = SimulationConfig(upload_ratio=0.7)
        reference = Simulator(config).run(trace)
        (result,) = Simulator(config).run_sweep(trace, [config])
        assert reference.identical_to(result)

    def test_rejects_empty_configs(self, trace):
        with pytest.raises(ValueError, match="at least one config"):
            Simulator().run_sweep(trace, [])

    def test_rejects_mixed_policies(self, trace):
        configs = [
            SimulationConfig(),
            SimulationConfig(policy=SwarmPolicy(split_by_isp=False)),
        ]
        with pytest.raises(ValueError, match="share one swarm policy"):
            Simulator().run_sweep(trace, configs)

    def test_single_run_stats_not_polluted_by_sweep(self, trace):
        config = SimulationConfig()
        simulator = Simulator(config)
        simulator.run_sweep(trace, [config])
        assert simulator.last_sweep is not None
        simulator.run(trace)
        assert simulator.last_sweep is None  # cleared by the single run


class TestSlotsTypesPickle:
    """The hot per-window types are slotted; they must still pickle
    (they cross process boundaries inside every sweep shard)."""

    def test_peer_state_round_trip(self):
        state = PeerState(
            member_id=7, user_id=3, demand=10.0, supply=4.0, exchange=2, pop=1, isp="BT"
        )
        clone = pickle.loads(pickle.dumps(state))
        assert (clone.member_id, clone.user_id, clone.demand, clone.supply) == (
            7, 3, 10.0, 4.0,
        )
        assert clone.attachment == state.attachment

    def test_window_allocation_round_trip(self):
        allocation = WindowAllocation(
            peer_bits={NetworkLayer.EXCHANGE: 5.0},
            server_bits=2.0,
            uploaded_bits={3: 5.0},
            demanded_bits=7.0,
        )
        clone = pickle.loads(pickle.dumps(allocation))
        assert clone.peer_bits == allocation.peer_bits
        assert clone.server_bits == allocation.server_bits
        assert clone.uploaded_bits == allocation.uploaded_bits
        assert clone.demanded_bits == allocation.demanded_bits

    def test_user_traffic_round_trip(self):
        traffic = UserTraffic(watched_bits=1.5, uploaded_bits=0.5)
        clone = pickle.loads(pickle.dumps(traffic))
        assert (clone.watched_bits, clone.uploaded_bits) == (1.5, 0.5)

    def test_byte_ledger_round_trip(self):
        ledger = ByteLedger(
            server_bits=1.0,
            peer_bits={NetworkLayer.POP: 2.0},
            demanded_bits=3.0,
            watch_seconds=4.0,
            sessions=5,
        )
        clone = pickle.loads(pickle.dumps(ledger))
        assert clone.server_bits == 1.0
        assert clone.peer_bits == {NetworkLayer.POP: 2.0}
        assert clone.sessions == 5

    def test_slots_reject_rogue_attributes(self):
        ledger = ByteLedger()
        with pytest.raises(AttributeError):
            ledger.rogue = 1  # type: ignore[attr-defined]
        traffic = UserTraffic()
        with pytest.raises(AttributeError):
            traffic.rogue = 1  # type: ignore[attr-defined]

    def test_multi_swarm_output_round_trip(self, trace):
        task = build_tasks(trace, trace.horizon, SimulationConfig().policy)[0]
        multi = run_swarm_multi(task, [SimulationConfig(upload_ratio=0.4)])
        clone = pickle.loads(pickle.dumps(multi))
        assert isinstance(clone, MultiSwarmOutput)
        assert_output_identical(multi.outputs[0], clone.outputs[0])
