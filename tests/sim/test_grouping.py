"""Grouping strategies: external == memory, bit for bit, lazily.

The out-of-core grouping contract (repro/sim/grouping.py): the external
merge-sort strategy must produce the *identical* canonical task
sequence the in-memory grouping produces -- same keys, same session
order inside each task -- so every downstream result is bit-for-bit
equal; its coordinator residency must be bounded by the sort buffer;
and its plan must hand workers extent refs, not pickled sessions.
"""

import json

import pytest

from repro.sim import SimulationConfig, Simulator, simulate
from repro.sim.backends import SerialBackend
from repro.sim.grouping import (
    GROUPING_MODES,
    ExtentTaskRef,
    ExternalGrouping,
    MemoryGrouping,
    as_task_plan,
    plan_handoff,
    resolve_grouping,
)
from repro.sim.kernel import SwarmTask, build_tasks, resolve_task
from repro.sim.policies import PAPER_POLICY, SwarmPolicy
from repro.trace.generator import GeneratorConfig, TraceGenerator


@pytest.fixture(scope="module")
def trace():
    config = GeneratorConfig(
        num_users=250, num_items=20, days=2, expected_sessions=2_000, seed=23
    )
    return TraceGenerator(config=config).generate()


def assert_same_tasks(a, b):
    """Two task sequences are identical: keys, sessions, horizons."""
    a, b = list(a), list(b)
    assert len(a) == len(b)
    for task_a, task_b in zip(a, b):
        assert task_a.key == task_b.key
        assert task_a.horizon == task_b.horizon
        assert task_a.sessions == task_b.sessions


class TestPlanEquivalence:
    @pytest.mark.parametrize(
        "policy",
        [
            PAPER_POLICY,
            SwarmPolicy(split_by_isp=False),
            SwarmPolicy(split_by_bitrate=False),
            SwarmPolicy(split_by_isp=False, split_by_bitrate=False),
        ],
        ids=["paper", "cross-isp", "mixed-bitrate", "content-only"],
    )
    def test_external_tasks_equal_memory_tasks(self, trace, tmp_path, policy):
        memory = MemoryGrouping().plan(trace, trace.horizon, policy)
        external = ExternalGrouping(shard_dir=tmp_path, run_sessions=128).plan(
            trace, trace.horizon, policy
        )
        try:
            assert len(external) == len(memory)
            assert list(external.session_counts) == list(memory.session_counts)
            assert_same_tasks(memory.iter_tasks(), external.iter_tasks())
        finally:
            external.cleanup()

    def test_external_plan_independent_of_input_order(self, trace, tmp_path):
        forward = ExternalGrouping(shard_dir=tmp_path / "f", run_sessions=100).plan(
            iter(trace.sessions), trace.horizon, PAPER_POLICY
        )
        backward = ExternalGrouping(shard_dir=tmp_path / "b", run_sessions=100).plan(
            reversed(trace.sessions), trace.horizon, PAPER_POLICY
        )
        try:
            assert_same_tasks(forward.iter_tasks(), backward.iter_tasks())
        finally:
            forward.cleanup()
            backward.cleanup()

    def test_refs_are_extents_not_sessions(self, trace, tmp_path):
        plan = ExternalGrouping(shard_dir=tmp_path, run_sessions=256).plan(
            trace, trace.horizon, PAPER_POLICY
        )
        try:
            refs = plan.refs()
            assert refs and all(isinstance(ref, ExtentTaskRef) for ref in refs)
            # The handoff contract: a ref pickles small and resolves to
            # the full task on the other side.
            import pickle

            ref = max(refs, key=lambda r: r.num_sessions)
            assert len(pickle.dumps(ref)) < 1_000
            task = resolve_task(pickle.loads(pickle.dumps(ref)))
            assert isinstance(task, SwarmTask)
            assert task.num_sessions == ref.num_sessions
            assert all(PAPER_POLICY.key_for(s) == ref.key for s in task.sessions)
        finally:
            plan.cleanup()

    def test_extent_refs_expose_byte_extents(self, trace, tmp_path):
        plan = ExternalGrouping(shard_dir=tmp_path, run_sessions=256).plan(
            trace, trace.horizon, PAPER_POLICY
        )
        try:
            manifest = plan.manifest
            offsets = [extent.offset for extent in manifest.extents]
            lengths = [extent.length for extent in manifest.extents]
            # Extents tile the record region contiguously.
            for i in range(1, len(offsets)):
                assert offsets[i] == offsets[i - 1] + lengths[i - 1]
        finally:
            plan.cleanup()

    def test_peak_buffered_bounded_by_run_sessions(self, trace, tmp_path):
        plan = ExternalGrouping(shard_dir=tmp_path, run_sessions=64).plan(
            trace, trace.horizon, PAPER_POLICY
        )
        try:
            stats = plan.stats()
            assert stats.mode == "external"
            assert stats.sessions == len(trace)
            assert 0 < stats.peak_buffered_sessions <= 64
            assert stats.runs_spilled == len(trace) // 64
            assert stats.shard_path is not None
        finally:
            plan.cleanup()

    def test_memory_plan_reports_full_residency(self, trace):
        plan = MemoryGrouping().plan(trace, trace.horizon, PAPER_POLICY)
        stats = plan.stats()
        assert stats.mode == "memory"
        assert stats.peak_buffered_sessions == len(trace)
        assert stats.sessions == len(trace)


class TestErrorContract:
    """External grouping mirrors build_tasks' validation exactly."""

    def test_rejects_nonpositive_horizon(self, tmp_path):
        with pytest.raises(ValueError):
            ExternalGrouping(shard_dir=tmp_path).plan(iter([]), 0.0, PAPER_POLICY)

    def test_rejects_sessions_past_horizon(self, trace, tmp_path):
        with pytest.raises(ValueError, match="horizon"):
            ExternalGrouping(shard_dir=tmp_path).plan(
                iter(trace.sessions), trace.horizon / 4, PAPER_POLICY
            )
        # No half-built shard directory survives the failure.
        assert list(tmp_path.iterdir()) == []

    def test_rejects_bad_run_sessions(self):
        with pytest.raises(ValueError):
            ExternalGrouping(run_sessions=0)


class TestCleanup:
    def test_temp_shard_removed_on_cleanup(self, trace):
        import os

        plan = ExternalGrouping(run_sessions=256).plan(
            trace, trace.horizon, PAPER_POLICY
        )
        shard_path = plan.manifest.path
        assert os.path.exists(shard_path)
        plan.cleanup()
        assert not os.path.exists(shard_path)
        assert plan.stats().shard_path is None

    def test_explicit_shard_dir_survives_cleanup(self, trace, tmp_path):
        import os

        plan = ExternalGrouping(shard_dir=tmp_path, run_sessions=256).plan(
            trace, trace.horizon, PAPER_POLICY
        )
        shard_path = plan.manifest.path
        plan.cleanup()
        assert os.path.exists(shard_path)
        assert plan.stats().shard_path == shard_path

    def test_simulator_cleans_temporary_shard(self, trace):
        import os

        simulator = Simulator(
            SimulationConfig(grouping="external"),
            backend=SerialBackend(),
        )
        result = simulator.run(trace)
        stats = simulator.last_grouping
        assert stats is not None and stats.mode == "external"
        assert stats.shard_path is None  # temporary shard is gone
        assert result.identical_to(simulate(trace))

    def test_simulator_keeps_explicit_shard(self, trace, tmp_path):
        import os

        config = SimulationConfig(grouping="external", shard_dir=str(tmp_path))
        simulator = Simulator(config, backend=SerialBackend())
        simulator.run(trace)
        stats = simulator.last_grouping
        assert stats is not None and stats.shard_path is not None
        assert os.path.exists(stats.shard_path)


class TestResolution:
    def test_resolve_names(self):
        assert isinstance(resolve_grouping(None), MemoryGrouping)
        assert isinstance(resolve_grouping("memory"), MemoryGrouping)
        external = resolve_grouping("external", shard_dir="/tmp/x")
        assert isinstance(external, ExternalGrouping)
        assert str(external.shard_dir) == "/tmp/x"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_grouping("quantum")

    def test_config_validates_grouping(self):
        with pytest.raises(ValueError):
            SimulationConfig(grouping="quantum")
        with pytest.raises(ValueError):
            SimulationConfig(shard_dir="/tmp/x")  # requires external
        assert SimulationConfig(grouping="external").grouping == "external"
        assert "memory" in GROUPING_MODES and "external" in GROUPING_MODES

    def test_simulator_caches_resolved_grouping(self):
        simulator = Simulator(SimulationConfig(grouping="external"))
        assert simulator.grouping is simulator.grouping
        assert isinstance(simulator.grouping, ExternalGrouping)

    def test_as_task_plan_wraps_sequences(self, trace):
        tasks = build_tasks(trace, trace.horizon, PAPER_POLICY)
        plan = as_task_plan(tasks)
        assert len(plan) == len(tasks)
        assert list(plan.iter_tasks()) == tasks
        assert as_task_plan(plan) is plan


class TestPlanHandoff:
    """plan_handoff: the JSON-able shard/manifest description the
    distributed backend publishes beside each job's work items."""

    def test_memory_plan_has_no_shard(self, trace):
        plan = MemoryGrouping().plan(trace, trace.horizon, PAPER_POLICY)
        payload = plan_handoff(plan)
        assert payload["mode"] == "memory"
        assert payload["tasks"] == len(plan)
        assert payload["sessions"] == len(trace)
        assert payload["shard"] is None
        json.dumps(payload)  # must be JSON-serializable as-is

    def test_external_plan_references_the_shard(self, trace, tmp_path):
        plan = ExternalGrouping(shard_dir=tmp_path).plan(
            trace, trace.horizon, PAPER_POLICY
        )
        try:
            payload = plan_handoff(plan)
            assert payload["mode"] == "external"
            assert payload["shard"] is not None
            assert payload["shard"]["path"] == plan.manifest.path
            assert payload["shard"]["extents"] == len(plan)
            assert payload["shard"]["horizon"] == trace.horizon
            json.dumps(payload)
        finally:
            plan.cleanup()
