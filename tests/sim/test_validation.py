"""Tests for the theory-validation harness."""

import pytest

from repro.core.energy import BALIGA
from repro.sim.validation import (
    ValidationPoint,
    ValidationReport,
    validate_against_theory,
)


@pytest.fixture(scope="module")
def report():
    return validate_against_theory(
        capacities=(1.0, 5.0), upload_ratios=(0.4, 1.0), days=5, seed=61
    )


class TestValidationPoint:
    def test_errors(self):
        point = ValidationPoint(
            target_capacity=1.0,
            measured_capacity=0.9,
            upload_ratio=1.0,
            offload_sim=0.30,
            offload_theory=0.28,
            savings_sim=0.07,
            savings_theory=0.075,
        )
        assert point.offload_error == pytest.approx(0.02)
        assert point.savings_error == pytest.approx(0.005)


class TestHarness:
    def test_point_grid(self, report):
        assert len(report.points) == 4
        ratios = {p.upload_ratio for p in report.points}
        assert ratios == {0.4, 1.0}

    def test_simulation_validates_eq3_and_eq12(self, report):
        """The paper's central empirical claim, as a hard assertion.

        The c ~ 1 point rides on only a few hundred Poisson arrivals,
        so its offload fraction carries a few percent of sampling noise;
        the tolerance reflects that, not model disagreement (the c >= 5
        points agree to well under 0.01)."""
        assert report.passes(offload_tol=0.05, savings_tol=0.03)

    def test_measured_capacity_scales_with_target(self, report):
        by_target = {}
        for p in report.points:
            by_target.setdefault(p.target_capacity, p.measured_capacity)
        assert by_target[5.0] > 3 * by_target[1.0]

    def test_offload_increases_with_ratio(self, report):
        by_ratio = {}
        for p in report.points:
            if p.target_capacity == 5.0:
                by_ratio[p.upload_ratio] = p.offload_sim
        assert by_ratio[1.0] > by_ratio[0.4]

    def test_render(self, report):
        text = report.render()
        assert "G sim" in text and "S theo" in text
        assert report.model_name in text

    def test_other_model(self):
        baliga = validate_against_theory(
            capacities=(3.0,), upload_ratios=(1.0,), model=BALIGA, days=2, seed=62
        )
        assert baliga.model_name == "baliga"
        assert baliga.passes(offload_tol=0.05, savings_tol=0.05)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            validate_against_theory(capacities=())
        with pytest.raises(ValueError):
            validate_against_theory(upload_ratios=())
