"""The columnar-kernel identity law: ``kernel="columnar"`` == ``kernel="object"``.

The object kernel is the semantics reference; the columnar kernel
(packed columns, array-form matching, optional compiled sweep) must be
*bit-for-bit* interchangeable -- float equality on every ledger field
AND identical dict insertion orders, because downstream reduction folds
in iteration order.  ``hypothesis`` drives adversarial swarms at the
contract: window-boundary ties (integer starts against dtau grids),
single-member swarms, sessions shorter than one window, zero-supply
configs (upload ratio 0, participation 0), lingering seeds and
degenerate participation.  When the compiled backend is built, the same
law is additionally pinned across backends (compiled vs pure-python
columnar) and builders (native C-built schedules vs python-built).

``hypothesis`` is an optional dependency: the module skips without it.
"""

import os
import subprocess
import sys
from contextlib import contextmanager
from dataclasses import replace

import pytest

pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sim import kernel_columns
from repro.sim.engine import KERNEL_MODES, SimulationConfig
from repro.sim.kernel import SwarmTask, run_swarm, run_swarm_multi, run_swarm_object
from repro.sim.kernel_columns import (
    ColumnSchedule,
    run_swarm_columnar,
    run_swarm_multi_columnar,
)
from repro.sim.policies import SwarmKey
from repro.topology.nodes import intern_attachment
from repro.trace.events import SECONDS_PER_DAY, Session

LAW = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

HORIZON = 2 * SECONDS_PER_DAY


@contextmanager
def _no_compiled_backend():
    """Mask the compiled backend so the pure-python columnar path runs."""
    saved = kernel_columns._ckernel
    kernel_columns._ckernel = None
    try:
        yield
    finally:
        kernel_columns._ckernel = saved

#: Small value spaces so examples collide on users, attachments and
#: window boundaries -- the tie-breaks and dict orders get real work.
_attachments = st.sampled_from(
    [
        intern_attachment("ISP-1", 0, 0),
        intern_attachment("ISP-1", 0, 1),
        intern_attachment("ISP-1", 1, 3),
        intern_attachment("ISP-2", 1, 5),
    ]
)

#: Starts drawn from both arbitrary seconds and exact dtau multiples,
#: so sessions tie on window boundaries often.
_starts = st.one_of(
    st.integers(min_value=0, max_value=int(HORIZON) - 1000),
    st.builds(lambda k: k * 60, st.integers(min_value=0, max_value=2000)),
)

_session_bodies = st.tuples(
    st.integers(min_value=0, max_value=6),  # user_id (duplicates likely)
    _starts,
    st.sampled_from([1, 7, 60, 120, 601]),  # duration: sub-window to multi
    st.sampled_from([800_000.0, 1_500_000.0]),  # bitrate
    _attachments,
)

_configs = st.builds(
    SimulationConfig,
    upload_ratio=st.sampled_from([0.0, 0.2, 0.6, 1.0, 1.7]),
    upload_bandwidth=st.sampled_from([None, None, 1e6]),
    participation_rate=st.sampled_from([0.0, 0.35, 1.0]),
    seed_linger_seconds=st.sampled_from([0.0, 0.0, 180.0]),
    delta_tau=st.sampled_from([10.0, 30.0, 60.0]),
    allow_cross_isp_matching=st.booleans(),
)


@st.composite
def swarm_tasks(draw):
    bodies = draw(st.lists(_session_bodies, min_size=1, max_size=16))
    sessions = sorted(
        (
            Session(
                session_id=index,
                user_id=user_id,
                content_id="item",
                start=float(start),
                duration=float(duration),
                bitrate=bitrate,
                attachment=attachment,
            )
            for index, (user_id, start, duration, bitrate, attachment) in enumerate(
                bodies
            )
        ),
        key=lambda s: (s.start, s.session_id),
    )
    return SwarmTask(
        key=SwarmKey(content_id="item"), sessions=tuple(sessions), horizon=HORIZON
    )


def assert_bitwise_identical(reference, candidate):
    """Bit-for-bit output equality, dict insertion orders included."""
    a, b = reference.result.ledger, candidate.result.ledger
    assert (
        a.server_bits,
        a.demanded_bits,
        a.watch_seconds,
        a.sessions,
    ) == (b.server_bits, b.demanded_bits, b.watch_seconds, b.sessions)
    assert list(a.peer_bits.items()) == list(b.peer_bits.items())
    assert reference.result.capacity == candidate.result.capacity
    assert reference.result.arrival_rate == candidate.result.arrival_rate
    assert reference.result.mean_duration == candidate.result.mean_duration
    assert list(reference.per_isp_day.keys()) == list(candidate.per_isp_day.keys())
    for key in reference.per_isp_day:
        x, y = reference.per_isp_day[key], candidate.per_isp_day[key]
        assert (x.server_bits, x.demanded_bits, x.watch_seconds) == (
            y.server_bits,
            y.demanded_bits,
            y.watch_seconds,
        )
        assert list(x.peer_bits.items()) == list(y.peer_bits.items())
    assert list(reference.per_user.keys()) == list(candidate.per_user.keys())
    for user_id in reference.per_user:
        mine, theirs = reference.per_user[user_id], candidate.per_user[user_id]
        assert (mine.watched_bits, mine.uploaded_bits) == (
            theirs.watched_bits,
            theirs.uploaded_bits,
        )


class TestColumnarIdentityLaw:
    @LAW
    @given(task=swarm_tasks(), config=_configs)
    def test_columnar_equals_object(self, task, config):
        reference = run_swarm_object(task, config)
        assert_bitwise_identical(
            reference, run_swarm(task, replace(config, kernel="columnar"))
        )

    @LAW
    @given(task=swarm_tasks(), config=_configs)
    def test_python_columnar_equals_object(self, task, config):
        """The pure-python columnar path (no compiled module) matches too."""
        reference = run_swarm_object(task, config)
        with _no_compiled_backend():
            candidate = run_swarm_columnar(task, config)
        assert_bitwise_identical(reference, candidate)

    @LAW
    @given(task=swarm_tasks(), configs=st.lists(_configs, min_size=1, max_size=4))
    def test_multi_columnar_equals_object_runs(self, task, configs):
        configs = [replace(config, kernel="columnar") for config in configs]
        multi = run_swarm_multi(task, configs)
        assert len(multi.outputs) == len(configs)
        assert multi.schedule_builds >= 1
        for config, output in zip(configs, multi.outputs):
            assert_bitwise_identical(run_swarm_object(task, config), output)


@pytest.mark.skipif(
    not kernel_columns.HAVE_COMPILED, reason="compiled kernel not built"
)
class TestCompiledBackend:
    @LAW
    @given(task=swarm_tasks(), config=_configs)
    def test_compiled_equals_python_backend(self, task, config):
        compiled = run_swarm_columnar(task, config)
        with _no_compiled_backend():
            python = run_swarm_columnar(task, config)
        assert_bitwise_identical(python, compiled)

    @settings(max_examples=25, deadline=None)
    @given(task=swarm_tasks())
    def test_native_build_matches_python_build(self, task):
        """The C schedule builder packs exactly what the python builder packs."""
        config = SimulationConfig()
        native = ColumnSchedule(task, config)
        with _no_compiled_backend():
            fallback = ColumnSchedule(task, config)
        if not native.native:
            return  # builder declined; nothing to compare
        assert not fallback.native
        for native_buf, fallback_buf in zip(native.packed(), fallback.packed()):
            assert bytes(native_buf) == bytes(fallback_buf)
        assert native.slot_users == fallback.slot_users
        assert native.num_users == fallback.num_users
        assert native.num_ex == fallback.num_ex
        assert native.num_pop == fallback.num_pop
        assert native.num_isp == fallback.num_isp
        assert native.num_days == fallback.num_days
        assert native.mean_duration == fallback.mean_duration
        assert bytes(native.supplies_for(config)) == bytes(
            __import__("array").array("d", fallback.supplies_for(config))
        )

    def test_no_ckernel_env_disables_compiled(self):
        """REPRO_NO_CKERNEL forces the pure-python fallback at import."""
        code = (
            "from repro.sim.kernel_columns import HAVE_COMPILED; "
            "raise SystemExit(1 if HAVE_COMPILED else 0)"
        )
        env = dict(os.environ, REPRO_NO_CKERNEL="1")
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run([sys.executable, "-c", code], env=env)
        assert proc.returncode == 0


class TestColumnSchedule:
    def _task(self, sessions):
        return SwarmTask(
            key=SwarmKey(content_id="item"),
            sessions=tuple(sessions),
            horizon=HORIZON,
        )

    def _session(self, index, user, start, duration, attachment=None):
        return Session(
            session_id=index,
            user_id=user,
            content_id="item",
            start=float(start),
            duration=float(duration),
            bitrate=1_000_000.0,
            attachment=attachment or intern_attachment("ISP-1", 0, 0),
        )

    def test_events_sorted_and_windows_match_object_expressions(self):
        config = SimulationConfig(delta_tau=60.0)
        task = self._task(
            [self._session(0, 1, 30.0, 45.0), self._session(1, 2, 59.0, 300.0)]
        )
        schedule = ColumnSchedule(task, config)
        if schedule.native:
            import struct

            events = list(struct.unpack("<4q", bytes(schedule.packed()[7])))
        else:
            events = schedule.ev_enc
        assert events == sorted(events)
        decoded = [(e >> 34, (e >> 32) & 3, e & 0xFFFFFFFF) for e in events]
        # Session 0: [30, 75) -> windows [0, 2); session 1: [59, 359) -> [0, 6).
        assert (0, 2, 0) in decoded and (2, 0, 0) in decoded
        assert (0, 2, 1) in decoded and (6, 0, 1) in decoded
        assert schedule.num_days == 1

    def test_sub_window_session_occupies_one_window(self):
        config = SimulationConfig(delta_tau=60.0)
        task = self._task([self._session(0, 1, 120.0, 1.0)])
        schedule = ColumnSchedule(task, config)
        output = run_swarm_columnar(task, config)
        reference = run_swarm_object(task, config)
        assert schedule.n == 1
        assert_bitwise_identical(reference, output)

    def test_kernel_mode_validation(self):
        assert KERNEL_MODES == ("auto", "object", "columnar")
        with pytest.raises(ValueError):
            SimulationConfig(kernel="vectorised")

    def test_random_matching_config_uses_object_kernel_in_multi(self):
        config = replace(
            SimulationConfig(kernel="columnar"), locality_aware_matching=False
        )
        task = self._task([self._session(0, 1, 0.0, 120.0)])
        multi = run_swarm_multi_columnar(task, [config])
        assert_bitwise_identical(run_swarm_object(task, config), multi.outputs[0])
