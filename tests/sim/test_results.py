"""Tests for simulation result aggregation."""

import pytest

from repro.core import BALIGA, VALANCIUS
from repro.sim import SimulationConfig, simulate
from repro.trace.generator import GeneratorConfig, TraceGenerator


@pytest.fixture(scope="module")
def result():
    config = GeneratorConfig(
        num_users=1_000, num_items=80, days=3, expected_sessions=7_000, seed=17
    )
    trace = TraceGenerator(config=config).generate()
    return simulate(trace, SimulationConfig(upload_ratio=1.0))


class TestHeadline:
    def test_savings_positive_for_busy_trace(self, result):
        assert result.savings(VALANCIUS) > 0.0
        assert result.savings(BALIGA) > 0.0

    def test_valancius_saves_more_than_baliga(self, result):
        """Valancius' expensive CDN paths make P2P relatively greener."""
        assert result.savings(VALANCIUS) > result.savings(BALIGA)

    def test_offload_is_model_independent(self, result):
        assert 0.0 < result.offload_fraction() < 1.0


class TestDailySeries:
    def test_every_isp_every_day_present(self, result):
        isps = result.isp_names()
        days = result.days()
        assert len(isps) == 5
        assert days == [0, 1, 2]
        for isp in isps:
            series = result.daily_savings(isp, VALANCIUS)
            assert [day for day, _ in series] == days

    def test_daily_savings_ordered_and_bounded(self, result):
        for isp in result.isp_names():
            for _, s in result.daily_savings(isp, VALANCIUS):
                assert -1.0 < s < 1.0

    def test_isp_ledger_merges_days(self, result):
        isp = result.isp_names()[0]
        merged = result.isp_ledger(isp)
        per_day = [
            ledger
            for (name, _), ledger in result.per_isp_day.items()
            if name == isp
        ]
        assert merged.demanded_bits == pytest.approx(
            sum(l.demanded_bits for l in per_day)
        )

    def test_biggest_isp_saves_most(self, result):
        """Larger subscriber share -> bigger swarms -> higher savings."""
        first = result.isp_ledger("ISP-1")
        last = result.isp_ledger("ISP-5")
        from repro.sim.accounting import savings

        assert savings(first, VALANCIUS) > savings(last, VALANCIUS)


class TestPerContent:
    def test_merges_across_isps_and_bitrates(self, result):
        per_content = result.per_content_results()
        sub_swarm_count = len(result.per_swarm)
        assert len(per_content) < sub_swarm_count
        total_capacity = sum(r.capacity for r in result.per_swarm.values())
        merged_capacity = sum(r.capacity for r in per_content.values())
        assert merged_capacity == pytest.approx(total_capacity)

    def test_popular_items_have_bigger_capacity(self, result):
        per_content = result.per_content_results()
        by_sessions = sorted(per_content.values(), key=lambda r: r.ledger.sessions)
        assert by_sessions[-1].capacity > by_sessions[0].capacity

    def test_popular_items_save_more(self, result):
        per_content = result.per_content_results()
        ranked = sorted(per_content.values(), key=lambda r: r.capacity)
        low = ranked[0].savings(VALANCIUS)
        high = ranked[-1].savings(VALANCIUS)
        assert high > low


class TestUserFootprints:
    def test_footprints_cover_all_users(self, result):
        footprints = result.user_footprints()
        assert set(footprints) == set(result.per_user)

    def test_carbon_positive_share_bounds(self, result):
        for model in (VALANCIUS, BALIGA):
            share = result.carbon_positive_share(model)
            assert 0.0 <= share <= 1.0

    def test_baliga_makes_more_users_positive(self, result):
        """Baliga's hotter servers transfer more credit (paper: >70 % vs 41 %)."""
        assert result.carbon_positive_share(BALIGA) >= result.carbon_positive_share(
            VALANCIUS
        )

    def test_non_uploaders_are_negative(self, result):
        from repro.core.carbon import UserFootprint

        for traffic in result.per_user.values():
            if traffic.uploaded_bits == 0.0 and traffic.watched_bits > 0.0:
                fp = traffic.footprint()
                assert fp.carbon_credit_transfer(VALANCIUS) == pytest.approx(-1.0)
                break
        else:  # pragma: no cover - extremely unlikely
            pytest.fail("expected at least one non-uploading viewer")
