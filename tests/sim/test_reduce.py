"""Unit tests for the incremental streaming reduction pipeline.

Covers the StreamingReducer's reorder-buffer contract (any completion
order folds to the batched result, residency is tracked honestly), the
FootprintAccumulator's packed/spilled per-user representations, the
contiguous block partitioner, and the engine-level reduction modes.
"""

import random

import pytest

from repro.sim import SimulationConfig, Simulator, simulate
from repro.sim.backends import SerialBackend, ThreadBackend, contiguous_blocks
from repro.sim.kernel import build_tasks, merge_outputs, run_shard
from repro.sim.reduce import (
    REDUCTION_MODES,
    FootprintAccumulator,
    StreamingReducer,
    iter_user_deltas,
    load_user_deltas,
)
from repro.sim.results import UserTraffic, merge_traffic_map
from repro.trace.generator import GeneratorConfig, TraceGenerator


@pytest.fixture(scope="module")
def trace():
    config = GeneratorConfig(
        num_users=200, num_items=15, days=2, expected_sessions=1_500, seed=77
    )
    return TraceGenerator(config=config).generate()


@pytest.fixture(scope="module")
def outputs(trace):
    config = SimulationConfig()
    tasks = build_tasks(trace, trace.horizon, config.policy)
    return run_shard(tasks, config), trace.horizon


def reference_result(outputs, horizon):
    return merge_outputs(
        outputs, delta_tau=10.0, horizon=horizon, upload_ratio=1.0
    )


class TestStreamingReducer:
    def test_in_order_single_blocks_match_batched(self, outputs):
        outs, horizon = outputs
        reference = reference_result(outs, horizon)
        reducer = StreamingReducer(
            delta_tau=10.0, horizon=horizon, upload_ratio=1.0
        )
        for index, output in enumerate(outs):
            reducer.add(index, [output])
        assert reducer.result().identical_to(reference)
        assert reducer.peak_resident == 1

    def test_shuffled_completion_order_matches_batched(self, outputs):
        outs, horizon = outputs
        reference = reference_result(outs, horizon)
        rng = random.Random(3)
        for _ in range(5):
            order = list(range(len(outs)))
            rng.shuffle(order)
            reducer = StreamingReducer(
                delta_tau=10.0, horizon=horizon, upload_ratio=1.0
            )
            for index in order:
                reducer.add(index, [outs[index]])
            assert reducer.result().identical_to(reference)

    def test_multi_output_blocks_match_batched(self, outputs):
        outs, horizon = outputs
        reference = reference_result(outs, horizon)
        # Split into uneven contiguous blocks and deliver them reversed.
        bounds = [0, 3, len(outs) // 2, len(outs)]
        blocks = [
            (start, list(outs[start:end]))
            for start, end in zip(bounds, bounds[1:])
            if end > start
        ]
        reducer = StreamingReducer(delta_tau=10.0, horizon=horizon, upload_ratio=1.0)
        for start, block in reversed(blocks):
            reducer.add(start, block)
        assert reducer.result().identical_to(reference)
        assert reducer.blocks_folded == len(blocks)
        assert reducer.outputs_folded == len(outs)

    def test_peak_resident_counts_reorder_buffer(self, outputs):
        outs, horizon = outputs
        reducer = StreamingReducer(delta_tau=10.0, horizon=horizon, upload_ratio=1.0)
        # Deliver 3 blocks that cannot fold yet, then unblock them.
        reducer.add(1, [outs[1]])
        reducer.add(2, [outs[2]])
        reducer.add(3, [outs[3]])
        assert reducer.peak_resident == 3
        assert reducer.outputs_folded == 0
        reducer.add(0, [outs[0]])
        assert reducer.peak_resident == 4  # the moment block 0 arrived
        assert reducer.outputs_folded == 4

    def test_rejects_empty_block(self, outputs):
        _, horizon = outputs
        reducer = StreamingReducer(delta_tau=10.0, horizon=horizon, upload_ratio=1.0)
        with pytest.raises(ValueError, match="at least one output"):
            reducer.add(0, [])

    def test_rejects_duplicate_and_stale_indices(self, outputs):
        outs, horizon = outputs
        reducer = StreamingReducer(delta_tau=10.0, horizon=horizon, upload_ratio=1.0)
        reducer.add(0, [outs[0]])
        with pytest.raises(ValueError, match="already delivered"):
            reducer.add(0, [outs[0]])  # already folded
        reducer.add(2, [outs[2]])
        with pytest.raises(ValueError, match="already delivered"):
            reducer.add(2, [outs[2]])  # still buffered

    def test_result_with_missing_block_raises(self, outputs):
        outs, horizon = outputs
        reducer = StreamingReducer(delta_tau=10.0, horizon=horizon, upload_ratio=1.0)
        reducer.add(1, [outs[1]])
        with pytest.raises(ValueError, match="never arrived"):
            reducer.result()

    def test_add_after_result_raises(self, outputs):
        outs, horizon = outputs
        reducer = StreamingReducer(delta_tau=10.0, horizon=horizon, upload_ratio=1.0)
        reducer.add(0, [outs[0]])
        reducer.result()
        with pytest.raises(RuntimeError):
            reducer.add(1, [outs[1]])


class TestFootprintAccumulator:
    def fold_dict(self, outs):
        per_user = {}
        for output in outs:
            merge_traffic_map(per_user, output.per_user)
        return per_user

    def test_packed_arrays_match_dict_fold_exactly(self, outputs):
        outs, _ = outputs
        accumulator = FootprintAccumulator()
        for output in outs:
            accumulator.add(output.per_user)
        expected = self.fold_dict(outs)
        materialized = accumulator.materialize()
        assert materialized.keys() == expected.keys()
        for uid, traffic in expected.items():
            assert materialized[uid].watched_bits == traffic.watched_bits
            assert materialized[uid].uploaded_bits == traffic.uploaded_bits
        assert accumulator.num_users == len(expected)

    def test_stats_totals(self, outputs):
        outs, _ = outputs
        accumulator = FootprintAccumulator()
        records = 0
        for output in outs:
            accumulator.add(output.per_user)
            records += len(output.per_user)
        stats = accumulator.stats()
        assert stats.records == records
        assert stats.users == accumulator.num_users
        expected = self.fold_dict(outs)
        assert stats.watched_bits == pytest.approx(
            sum(t.watched_bits for t in expected.values())
        )
        assert stats.uploaded_bits == pytest.approx(
            sum(t.uploaded_bits for t in expected.values())
        )

    def test_spill_log_round_trips_exactly(self, outputs, tmp_path):
        outs, _ = outputs
        spill = tmp_path / "deltas.log"
        accumulator = FootprintAccumulator(spill_path=spill)
        for output in outs:
            accumulator.add(output.per_user)
        assert accumulator.num_users is None  # no per-user index resident
        materialized = accumulator.materialize()
        expected = self.fold_dict(outs)
        assert materialized.keys() == expected.keys()
        for uid, traffic in expected.items():
            assert materialized[uid].watched_bits == traffic.watched_bits
            assert materialized[uid].uploaded_bits == traffic.uploaded_bits
        # The log itself is exact and independently consumable.
        assert spill.exists()
        replayed = load_user_deltas(spill)
        assert replayed.keys() == expected.keys()
        total_records = sum(1 for _ in iter_user_deltas(spill))
        assert total_records == accumulator.stats().records

    def test_spill_repr_round_trip_of_awkward_floats(self, tmp_path):
        spill = tmp_path / "deltas.log"
        accumulator = FootprintAccumulator(spill_path=spill)
        awkward = {
            7: UserTraffic(watched_bits=0.1 + 0.2, uploaded_bits=1e300),
            8: UserTraffic(watched_bits=5e-324, uploaded_bits=0.0),
        }
        accumulator.add(awkward)
        materialized = accumulator.materialize()
        assert materialized[7].watched_bits == 0.1 + 0.2
        assert materialized[7].uploaded_bits == 1e300
        assert materialized[8].watched_bits == 5e-324

    def test_empty_accumulator_materializes_empty(self, tmp_path):
        assert FootprintAccumulator().materialize() == {}
        spilled = FootprintAccumulator(spill_path=tmp_path / "never-written.log")
        assert spilled.materialize() == {}

    def test_add_after_spill_close_raises_instead_of_truncating(self, tmp_path):
        spill = tmp_path / "deltas.log"
        accumulator = FootprintAccumulator(spill_path=spill)
        accumulator.add({1: UserTraffic(watched_bits=8.0, uploaded_bits=2.0)})
        first = accumulator.materialize()  # closes the log
        with pytest.raises(RuntimeError, match="already closed"):
            accumulator.add({2: UserTraffic(watched_bits=4.0, uploaded_bits=0.0)})
        # The folded records survived untouched.
        assert load_user_deltas(spill).keys() == first.keys() == {1}


class TestContiguousBlocks:
    def blocks_cover_tasks(self, tasks, blocks):
        index = 0
        for start, members in blocks:
            assert start == index
            assert members, "blocks must be non-empty"
            assert list(members) == list(tasks[start : start + len(members)])
            index += len(members)
        assert index == len(tasks)

    def test_partition_invariants(self, trace):
        config = SimulationConfig()
        tasks = build_tasks(trace, trace.horizon, config.policy)
        for num_blocks in (1, 2, 3, 7, len(tasks), len(tasks) * 3):
            blocks = contiguous_blocks(tasks, num_blocks)
            assert len(blocks) <= max(1, min(num_blocks, len(tasks)))
            self.blocks_cover_tasks(tasks, blocks)

    def test_session_balance_beats_naive_split(self, trace):
        """Weighted cuts: no block should hold the bulk of the sessions
        when several blocks are requested."""
        config = SimulationConfig()
        tasks = build_tasks(trace, trace.horizon, config.policy)
        blocks = contiguous_blocks(tasks, 8)
        total = sum(len(t.sessions) for t in tasks)
        heaviest = max(sum(len(t.sessions) for t in members) for _, members in blocks)
        assert heaviest < 0.5 * total

    def test_empty_tasks(self):
        assert contiguous_blocks([], 4) == []

    def test_overweight_head_does_not_starve_later_cuts(self):
        """A Zipf-head task heavier than several global share targets
        must absorb only its own block; the remaining cuts re-pace on
        the weight left, not the global cumulative thresholds."""
        from repro.sim.kernel import SwarmTask
        from repro.sim.policies import SwarmKey

        def task(i, sessions):
            return SwarmTask(
                key=SwarmKey(content_id=f"c{i:02d}"),
                sessions=tuple(object() for _ in range(sessions)),
                horizon=10.0,
            )

        tasks = [task(0, 100)] + [task(i, 1) for i in range(1, 10)]
        blocks = contiguous_blocks(tasks, 4)
        assert [len(members) for _, members in blocks] == [1, 3, 3, 3]
        self.blocks_cover_tasks(tasks, blocks)

    def test_all_empty_tasks_split_evenly(self):
        """Zero total session weight falls back to unit weights instead
        of one block swallowing everything."""
        from repro.sim.kernel import SwarmTask
        from repro.sim.policies import SwarmKey

        tasks = [
            SwarmTask(key=SwarmKey(content_id=f"c{i}"), sessions=(), horizon=10.0)
            for i in range(8)
        ]
        blocks = contiguous_blocks(tasks, 4)
        assert [len(members) for _, members in blocks] == [2, 2, 2, 2]
        self.blocks_cover_tasks(tasks, blocks)


class TestEngineReductionModes:
    def test_modes_registry(self):
        assert REDUCTION_MODES == ("batched", "streaming", "spill")

    def test_config_rejects_unknown_reduction(self):
        with pytest.raises(ValueError, match="reduction"):
            SimulationConfig(reduction="mapreduce")

    def test_config_rejects_spill_dir_without_spill(self, tmp_path):
        with pytest.raises(ValueError, match="spill_dir"):
            SimulationConfig(reduction="streaming", spill_dir=str(tmp_path))

    @pytest.mark.parametrize("reduction", ["streaming", "spill"])
    def test_streaming_modes_identical_to_batched(self, trace, reduction):
        reference = simulate(trace)
        result = simulate(trace, SimulationConfig(reduction=reduction))
        assert reference.identical_to(result)

    def test_last_reduction_stats_batched(self, trace):
        simulator = Simulator(SimulationConfig(), backend=SerialBackend())
        simulator.run(trace)
        stats = simulator.last_reduction
        assert stats.mode == "batched"
        assert stats.peak_resident == stats.blocks == stats.outputs

    def test_streaming_residency_bounded_by_workers_plus_one(self, trace):
        """The acceptance bound: resident partial count <= workers + 1."""
        workers = 3
        simulator = Simulator(
            SimulationConfig(reduction="streaming"), backend=ThreadBackend(workers)
        )
        result = simulator.run(trace)
        stats = simulator.last_reduction
        assert stats.mode == "streaming"
        assert 1 <= stats.peak_resident <= workers + 1
        assert stats.outputs == stats.blocks  # thread path: one task per block
        assert result.identical_to(simulate(trace))

    def test_serial_streaming_residency_is_one(self, trace):
        simulator = Simulator(
            SimulationConfig(reduction="streaming"), backend=SerialBackend()
        )
        simulator.run(trace)
        assert simulator.last_reduction.peak_resident == 1

    def test_spill_with_explicit_dir_keeps_log(self, trace, tmp_path):
        config = SimulationConfig(reduction="spill", spill_dir=str(tmp_path))
        simulator = Simulator(config, backend=SerialBackend())
        result = simulator.run(trace)
        stats = simulator.last_reduction
        assert stats.spill_path is not None
        replayed = load_user_deltas(stats.spill_path)
        assert replayed.keys() == result.per_user.keys()
        for uid, traffic in result.per_user.items():
            assert replayed[uid].watched_bits == traffic.watched_bits
            assert replayed[uid].uploaded_bits == traffic.uploaded_bits

    def test_spill_with_temp_dir_cleans_up(self, trace):
        simulator = Simulator(
            SimulationConfig(reduction="spill"), backend=SerialBackend()
        )
        result = simulator.run(trace)
        assert simulator.last_reduction.spill_path is None  # gone with the run
        assert result.identical_to(simulate(trace))

    def test_process_streaming_shards_capped_by_session_quantum(self, trace):
        """The streaming shard count grows with the trace (one shard
        per ~min_sessions sessions), so each resident block's size --
        not just the block count -- stays bounded."""
        from repro.sim.backends import ProcessPoolBackend

        quantum = 200
        backend = ProcessPoolBackend(2, min_sessions=quantum)
        simulator = Simulator(
            SimulationConfig(reduction="streaming"), backend=backend
        )
        try:
            result = simulator.run(trace)
        finally:
            backend.close()
        stats = simulator.last_reduction
        total_sessions = len(trace.sessions)
        assert stats.blocks >= total_sessions // quantum
        assert stats.peak_resident <= backend.workers + 1
        # Resident outputs are bounded by the in-flight blocks' content,
        # far below the full shard total the batched mode holds.
        assert stats.peak_resident_outputs < stats.outputs
        assert result.identical_to(simulate(trace))

    def test_streaming_run_stream_from_iterator(self, trace):
        """End-to-end streaming: lazy sessions in, folded result out."""
        simulator = Simulator(SimulationConfig(reduction="streaming"))
        result = simulator.run_stream(iter(trace.sessions), trace.horizon)
        assert result.identical_to(simulate(trace))
