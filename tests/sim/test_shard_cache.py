"""The content-addressed shard cache: group once, reuse everywhere.

ROADMAP item (d): the sorted shard + manifest produced by external
grouping is a reusable artefact keyed by (trace fingerprint, policy,
store version).  These tests pin the contract:

* a second plan over the same (trace, policy) reuses the manifest with
  ``GroupingStats.cache_hit is True`` and **never consumes the session
  stream** (proved with a poisoned iterator -- the strongest possible
  "no re-sort" witness);
* reuse crosses Simulator instances and OS processes;
* cache keys separate on trace content, policy and horizon;
* corrupt entries rebuild instead of failing;
* cached results stay bit-for-bit identical to uncached ones.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro
from repro.sim import SimulationConfig, Simulator
from repro.sim.grouping import ExternalGrouping, MemoryGrouping
from repro.sim.policies import PAPER_POLICY, SwarmPolicy
from repro.trace.generator import GeneratorConfig, TraceGenerator
from repro.trace.loader import save_jsonl
from repro.trace.store import trace_fingerprint


@pytest.fixture(scope="module")
def trace():
    config = GeneratorConfig(
        num_users=120, num_items=10, days=1, expected_sessions=600, seed=13
    )
    return TraceGenerator(config=config).generate()


def poisoned_sessions():
    """An iterator that explodes if anyone consumes it."""

    def explode():
        raise AssertionError("cached plan consumed the session stream")
        yield  # pragma: no cover

    return explode()


class TestPlanLevelCache:
    def test_second_plan_hits_without_consuming_stream(self, trace, tmp_path):
        grouping = ExternalGrouping(shard_dir=tmp_path / "shards", run_sessions=200)
        token = trace_fingerprint(trace)
        first = grouping.plan(trace, trace.horizon, PAPER_POLICY, cache_token=token)
        stats = first.stats()
        assert stats.cache_hit is False
        assert stats.runs_spilled >= 1  # the sort really happened
        first.cleanup()

        second = grouping.plan(
            poisoned_sessions(), trace.horizon, PAPER_POLICY, cache_token=token
        )
        hit_stats = second.stats()
        assert hit_stats.cache_hit is True
        assert hit_stats.runs_spilled == 0
        assert hit_stats.peak_buffered_sessions == 0  # nothing buffered at all
        # Identical task partition: same keys, same session counts.
        assert [e.key for e in second.manifest.extents] == [
            e.key for e in first.manifest.extents
        ]
        assert list(second.session_counts) == list(first.session_counts)
        second.cleanup()

    def test_fresh_grouping_instance_hits(self, trace, tmp_path):
        shard_dir = tmp_path / "shards"
        token = trace_fingerprint(trace)
        ExternalGrouping(shard_dir=shard_dir).plan(
            trace, trace.horizon, PAPER_POLICY, cache_token=token
        ).cleanup()
        plan = ExternalGrouping(shard_dir=shard_dir).plan(
            poisoned_sessions(), trace.horizon, PAPER_POLICY, cache_token=token
        )
        assert plan.stats().cache_hit is True
        plan.cleanup()

    def test_no_token_means_no_cache(self, trace, tmp_path):
        grouping = ExternalGrouping(shard_dir=tmp_path / "shards")
        plan = grouping.plan(trace, trace.horizon, PAPER_POLICY)
        assert plan.stats().cache_hit is None
        plan.cleanup()

    def test_no_shard_dir_means_no_cache(self, trace):
        grouping = ExternalGrouping()  # run-scoped temp dir
        assert grouping.supports_cache is False
        plan = grouping.plan(
            trace, trace.horizon, PAPER_POLICY, cache_token=trace_fingerprint(trace)
        )
        assert plan.stats().cache_hit is None
        plan.cleanup()

    def test_memory_grouping_ignores_token(self, trace):
        plan = MemoryGrouping().plan(
            trace, trace.horizon, PAPER_POLICY, cache_token="whatever"
        )
        assert plan.stats().cache_hit is None

    def test_key_separates_policy_and_horizon_and_content(self, trace, tmp_path):
        shard_dir = tmp_path / "shards"
        grouping = ExternalGrouping(shard_dir=shard_dir)
        token = trace_fingerprint(trace)
        grouping.plan(trace, trace.horizon, PAPER_POLICY, cache_token=token).cleanup()

        other_policy = grouping.plan(
            trace, trace.horizon, SwarmPolicy(split_by_bitrate=False), cache_token=token
        )
        assert other_policy.stats().cache_hit is False
        other_policy.cleanup()

        other_horizon = grouping.plan(
            trace, trace.horizon * 2, PAPER_POLICY, cache_token=token
        )
        assert other_horizon.stats().cache_hit is False
        other_horizon.cleanup()

        shuffled = TraceGenerator(
            config=GeneratorConfig(
                num_users=120, num_items=10, days=1, expected_sessions=600, seed=14
            )
        ).generate()
        assert trace_fingerprint(shuffled) != trace_fingerprint(trace)

    def test_corrupt_manifest_rebuilds(self, trace, tmp_path):
        shard_dir = tmp_path / "shards"
        grouping = ExternalGrouping(shard_dir=shard_dir)
        token = trace_fingerprint(trace)
        grouping.plan(trace, trace.horizon, PAPER_POLICY, cache_token=token).cleanup()
        (manifest_path,) = shard_dir.glob("cache-*/manifest.json")
        manifest_path.write_text("{ not json")
        rebuilt = grouping.plan(
            trace, trace.horizon, PAPER_POLICY, cache_token=token
        )
        assert rebuilt.stats().cache_hit is False
        rebuilt.cleanup()


class TestSimulatorCache:
    def test_second_simulator_reuses_and_matches(self, trace, tmp_path):
        baseline = Simulator(SimulationConfig()).run(trace)
        config = SimulationConfig(
            grouping="external", shard_dir=str(tmp_path / "shards")
        )
        first = Simulator(config)
        built = first.run(trace)
        assert first.last_grouping.cache_hit is False
        second = Simulator(config)
        reused = second.run(trace)
        assert second.last_grouping.cache_hit is True
        assert baseline.identical_to(built)
        assert baseline.identical_to(reused)

    def test_sweep_reuses_cached_shard(self, trace, tmp_path):
        configs = [SimulationConfig(upload_ratio=r) for r in (0.2, 0.6, 1.0)]
        baseline = [Simulator(c).run(trace) for c in configs]
        cached = SimulationConfig(
            grouping="external", shard_dir=str(tmp_path / "shards")
        )
        first = Simulator(cached)
        built = first.run_sweep(trace, configs)
        assert first.last_sweep.cache_hit is False
        second = Simulator(cached)
        reused = second.run_sweep(trace, configs)
        assert second.last_sweep.cache_hit is True
        for reference, a, b in zip(baseline, built, reused):
            assert reference.identical_to(a)
            assert reference.identical_to(b)

    def test_run_then_sweep_share_one_shard(self, trace, tmp_path):
        """A single run and a later sweep over the same trace + policy
        address the same cache entry."""
        config = SimulationConfig(
            grouping="external", shard_dir=str(tmp_path / "shards")
        )
        first = Simulator(config)
        first.run(trace)
        assert first.last_grouping.cache_hit is False
        second = Simulator(config)
        second.run_sweep(trace, [SimulationConfig(upload_ratio=r) for r in (0.4, 0.8)])
        assert second.last_sweep.cache_hit is True
        # Exactly one cache entry on disk.
        assert len(list((tmp_path / "shards").glob("cache-*"))) == 1


class TestCrossProcessCache:
    def test_second_process_reuses_manifest(self, trace, tmp_path):
        """The acceptance-criterion scenario: a *separate OS process*
        running a fresh Simulator over the same trace + policy reuses
        the persisted manifest without re-sorting."""
        trace_path = tmp_path / "trace.jsonl"
        save_jsonl(trace, trace_path)
        shard_dir = tmp_path / "shards"
        script = textwrap.dedent(
            """
            import sys
            from repro.sim import SimulationConfig, Simulator
            from repro.trace.loader import load_jsonl

            trace = load_jsonl(sys.argv[1])
            simulator = Simulator(
                SimulationConfig(grouping="external", shard_dir=sys.argv[2])
            )
            result = simulator.run(trace)
            print(
                f"cache_hit={simulator.last_grouping.cache_hit} "
                f"offload={result.offload_fraction()!r}"
            )
            """
        )
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")

        def run_once():
            return subprocess.run(
                [sys.executable, "-c", script, str(trace_path), str(shard_dir)],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            ).stdout.strip()

        first = run_once()
        second = run_once()
        assert "cache_hit=False" in first
        assert "cache_hit=True" in second
        # Same bits either way (offload printed via repr round-trips).
        assert first.split("offload=")[1] == second.split("offload=")[1]
