"""Failure paths of the file-based work queue (repro/sim/queue.py).

The distributed backend's correctness rests on the queue's crash
protocol: claims are exclusive, leases expire into requeues, acks are
idempotent, poisoned items are terminal, and every byte of state lives
on disk so a restarted coordinator resumes instead of re-running.
These tests drive each of those paths directly -- no subprocesses, no
timing slack beyond tiny leases -- so the engine-level distributed
matrix can assume them.
"""

import logging
import os
import pickle
import threading
import time

import pytest

from repro.sim.engine import SimulationConfig
from repro.sim.queue import (
    JobSpec,
    QueueItemError,
    WorkItem,
    WorkQueue,
    item_id_for,
    make_items,
    position_of,
)
from repro.sim.worker import run_worker


def make_queue(tmp_path, lease_timeout=0.2):
    return WorkQueue(tmp_path / "job-test", lease_timeout=lease_timeout)


def put_items(queue, count):
    items = [
        WorkItem(item_id=item_id_for(i), start_index=i, refs=(f"ref-{i}",))
        for i in range(count)
    ]
    for item in items:
        queue.put(item)
    return items


class TestClaimProtocol:
    def test_claim_is_exclusive(self, tmp_path):
        queue = make_queue(tmp_path)
        put_items(queue, 1)
        first = queue.claim("worker-a")
        assert first is not None and first.item_id == item_id_for(0)
        assert queue.claim("worker-b") is None  # nothing left to claim
        assert queue.pending_ids() == set()
        assert queue.claimed_ids() == {item_id_for(0)}

    def test_claim_lowest_item_first(self, tmp_path):
        queue = make_queue(tmp_path)
        put_items(queue, 3)
        order = [queue.claim("w").item_id for _ in range(3)]
        assert order == [item_id_for(0), item_id_for(1), item_id_for(2)]

    def test_concurrent_claimers_cover_disjointly(self, tmp_path):
        """N racing claimers: every item claimed exactly once."""
        queue = make_queue(tmp_path)
        put_items(queue, 20)
        won = []
        lock = threading.Lock()

        def claimer(name):
            while True:
                claim = queue.claim(name)
                if claim is None:
                    return
                with lock:
                    won.append(claim.item_id)

        threads = [
            threading.Thread(target=claimer, args=(f"w{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(won) == [item_id_for(i) for i in range(20)]
        assert len(set(won)) == 20  # no double claims

    def test_roundtrip_item_payload(self, tmp_path):
        queue = make_queue(tmp_path)
        item = WorkItem(item_id=item_id_for(7), start_index=42, refs=("a", "b"))
        queue.put(item)
        claim = queue.claim("w")
        assert queue.load_item(claim) == item


class TestStaleLeaseRequeue:
    def test_expired_lease_is_requeued(self, tmp_path):
        queue = make_queue(tmp_path, lease_timeout=0.15)
        put_items(queue, 1)
        claim = queue.claim("doomed-worker")
        assert claim is not None
        assert queue.requeue_stale() == []  # fresh lease: nothing to do
        time.sleep(0.2)
        assert queue.requeue_stale() == [item_id_for(0)]
        # The item is claimable again by a surviving worker.
        second = queue.claim("survivor")
        assert second is not None and second.item_id == item_id_for(0)

    def test_renewed_lease_is_not_requeued(self, tmp_path):
        queue = make_queue(tmp_path, lease_timeout=0.25)
        put_items(queue, 1)
        claim = queue.claim("slow-but-alive")
        for _ in range(4):  # keep renewing past several lease horizons
            time.sleep(0.1)
            assert claim.renew()
            assert queue.requeue_stale() == []

    def test_renew_reports_lost_claim(self, tmp_path):
        queue = make_queue(tmp_path, lease_timeout=0.1)
        put_items(queue, 1)
        claim = queue.claim("doomed-worker")
        time.sleep(0.15)
        queue.requeue_stale()
        assert claim.renew() is False  # the claim is gone; worker learns it

    def test_dead_worker_with_result_is_acked_not_rerun(self, tmp_path):
        """Crash between result write and ack: the work is honoured."""
        queue = make_queue(tmp_path, lease_timeout=0.1)
        put_items(queue, 1)
        claim = queue.claim("died-after-writing")
        # Simulate the result landing without the ack rename.
        (queue.results_dir / f"{claim.item_id}.out").write_bytes(
            pickle.dumps(["the outputs"])
        )
        time.sleep(0.15)
        assert queue.requeue_stale() == []  # acked on the dead worker's behalf
        assert queue.pending_ids() == set()
        assert queue.acked_ids() == {claim.item_id}
        assert queue.load_result(claim.item_id) == ["the outputs"]


class TestDuplicateAck:
    def test_double_ack_same_worker_is_benign(self, tmp_path):
        queue = make_queue(tmp_path)
        put_items(queue, 1)
        claim = queue.claim("w")
        queue.ack(claim, ["result"])
        queue.ack(claim, ["result"])  # crash-retry: no error, same state
        assert queue.result_ids() == {claim.item_id}
        assert queue.load_result(claim.item_id) == ["result"]
        assert queue.acked_ids() == {claim.item_id}

    def test_ack_after_requeue_and_reexecution(self, tmp_path):
        """A 'dead' worker that was merely slow acks after the item was
        requeued and finished by someone else: one result, no error."""
        queue = make_queue(tmp_path, lease_timeout=0.1)
        put_items(queue, 1)
        slow = queue.claim("presumed-dead")
        time.sleep(0.15)
        assert queue.requeue_stale() == [slow.item_id]
        fast = queue.claim("replacement")
        queue.ack(fast, ["deterministic result"])
        # Kernels are pure: the zombie's late ack carries identical data.
        queue.ack(slow, ["deterministic result"])
        assert queue.result_ids() == {item_id_for(0)}
        assert queue.load_result(item_id_for(0)) == ["deterministic result"]
        # Exactly one retired copy of the item exists.
        assert queue.acked_ids() == {item_id_for(0)}
        assert queue.pending_ids() == set()
        assert queue.claimed_ids() == set()


class TestCorruptPayloads:
    def test_corrupt_item_raises_queue_item_error(self, tmp_path):
        queue = make_queue(tmp_path)
        (queue.pending_dir / f"{item_id_for(0)}.task").write_bytes(b"not pickle")
        claim = queue.claim("w")
        with pytest.raises(QueueItemError):
            queue.load_item(claim)

    def test_wrong_payload_type_rejected(self, tmp_path):
        queue = make_queue(tmp_path)
        (queue.pending_dir / f"{item_id_for(0)}.task").write_bytes(
            pickle.dumps({"not": "a WorkItem"})
        )
        claim = queue.claim("w")
        with pytest.raises(QueueItemError):
            queue.load_item(claim)

    def test_discard_parks_item_in_failed(self, tmp_path):
        queue = make_queue(tmp_path)
        (queue.pending_dir / f"{item_id_for(0)}.task").write_bytes(b"garbage")
        claim = queue.claim("w")
        queue.discard(claim, "corrupt work item")
        failures = queue.failed_items()
        assert set(failures) == {item_id_for(0)}
        assert "corrupt" in failures[item_id_for(0)]
        # Terminal: never claimable again.
        assert queue.claim("w") is None
        assert queue.requeue_stale() == []

    def test_worker_skips_corrupt_item_with_logged_error(self, tmp_path, caplog):
        """A real worker meets a corrupt item: logs, parks it, keeps
        serving the healthy items."""
        queue = make_queue(tmp_path, lease_timeout=30.0)
        queue.write_spec(JobSpec(kind="single", config=SimulationConfig()))
        (queue.pending_dir / f"{item_id_for(0)}.task").write_bytes(b"\x80garbage")
        # A healthy (empty-refs) item behind the poisoned one.
        queue.put(WorkItem(item_id=item_id_for(1), start_index=0, refs=()))
        with caplog.at_level(logging.ERROR, logger="repro.sim.queue"):
            processed = run_worker(
                tmp_path, poll_interval=0.01, idle_exit=0.2, worker_id="w"
            )
        assert processed == 1  # the healthy item ran
        assert set(queue.failed_items()) == {item_id_for(0)}
        assert any("corrupt" in message for message in caplog.messages)

    def test_corrupt_spec_is_skipped_and_logged(self, tmp_path, caplog):
        queue = make_queue(tmp_path)
        (queue.job_dir / WorkQueue.SPEC_FILENAME).write_bytes(b"junk")
        put_items(queue, 1)
        with caplog.at_level(logging.ERROR, logger="repro.sim.worker"):
            processed = run_worker(
                tmp_path, poll_interval=0.01, idle_exit=0.15, worker_id="w"
            )
        assert processed == 0
        assert queue.pending_ids() == {item_id_for(0)}  # untouched
        assert any("skipping job" in message for message in caplog.messages)


class TestCoordinatorRestart:
    def test_restart_resumes_from_acked_state(self, tmp_path):
        """All queue state is on disk: a 'restarted coordinator' (a new
        WorkQueue over the same directory) sees acked results without
        re-running them and hands out exactly the remaining work."""
        first = make_queue(tmp_path)
        first.write_spec(JobSpec(kind="single", config=SimulationConfig()))
        put_items(first, 4)
        for _ in range(2):  # half the job completes before the "crash"
            claim = first.claim("w")
            first.ack(claim, [f"result-{claim.item_id}"])
        del first

        restarted = make_queue(tmp_path)
        assert restarted.load_spec().kind == "single"
        assert restarted.result_ids() == {item_id_for(0), item_id_for(1)}
        assert restarted.load_result(item_id_for(0)) == [
            f"result-{item_id_for(0)}"
        ]
        # Only the unfinished items remain claimable.
        remaining = set()
        while True:
            claim = restarted.claim("w2")
            if claim is None:
                break
            remaining.add(claim.item_id)
            restarted.ack(claim, ["late result"])
        assert remaining == {item_id_for(2), item_id_for(3)}
        assert restarted.result_ids() == {item_id_for(i) for i in range(4)}

    def test_restart_recovers_orphaned_claims(self, tmp_path):
        """Items claimed by workers that died with the old coordinator
        come back through the standard stale-lease path."""
        first = make_queue(tmp_path, lease_timeout=0.1)
        put_items(first, 2)
        first.claim("old-world-worker")
        del first

        time.sleep(0.15)
        restarted = make_queue(tmp_path, lease_timeout=0.1)
        assert restarted.requeue_stale() == [item_id_for(0)]
        assert restarted.pending_ids() == {item_id_for(0), item_id_for(1)}


class TestFilesystemClockLeases:
    """Lease ages must come from the storage clock, not the host's."""

    def test_skewed_coordinator_clock_does_not_requeue_fresh_leases(
        self, tmp_path, monkeypatch
    ):
        """Regression: a coordinator whose host clock runs an hour ahead
        of the storage server must not declare freshly renewed leases
        stale (claimed-file mtimes are stamped by the *storage* clock)."""
        queue = make_queue(tmp_path, lease_timeout=5.0)
        put_items(queue, 1)
        assert queue.claim("healthy-worker") is not None
        real_time = time.time
        monkeypatch.setattr(
            "repro.sim.queue.time.time", lambda: real_time() + 3600.0
        )
        assert queue.requeue_stale() == []  # the lease is seconds old

    def test_skewed_coordinator_clock_still_expires_dead_leases(
        self, tmp_path, monkeypatch
    ):
        """The mirror image: a coordinator running an hour *behind* must
        still expire a genuinely dead worker's lease."""
        queue = make_queue(tmp_path, lease_timeout=0.2)
        put_items(queue, 1)
        claim = queue.claim("doomed-worker")
        past = time.time() - 10.0  # the worker died ages ago (fs clock)
        os.utime(claim.path, (past, past))
        real_time = time.time
        monkeypatch.setattr(
            "repro.sim.queue.time.time", lambda: real_time() - 3600.0
        )
        assert queue.requeue_stale() == [item_id_for(0)]

    def test_fs_now_reads_the_storage_clock(self, tmp_path):
        queue = make_queue(tmp_path)
        now = queue.fs_now()
        assert abs(now - time.time()) < 5.0  # tmp_path is local storage
        assert queue.fs_now() >= now - 1.0  # touch keeps it moving

    def test_fs_now_survives_a_retired_job(self, tmp_path):
        """The queue dir vanishing mid-call falls back to the local
        clock instead of raising."""
        import shutil

        queue = make_queue(tmp_path)
        shutil.rmtree(queue.job_dir)
        assert abs(queue.fs_now() - time.time()) < 5.0


class TestAbandonedJobs:
    """Orphan job-* dirs from crashed coordinators get quarantined."""

    @staticmethod
    def _backdate(queue, seconds=60.0):
        past = time.time() - seconds
        for path in queue.job_dir.rglob("*"):
            if path.is_file():
                os.utime(path, (past, past))

    def test_empty_from_birth_job_is_abandoned(self, tmp_path):
        """A coordinator that crashed between spec publication and the
        first put leaves a job with a spec and nothing else."""
        queue = make_queue(tmp_path)
        queue.write_spec(JobSpec(kind="single", config=SimulationConfig()))
        assert not queue.is_abandoned(1.0)  # too young to call
        self._backdate(queue)
        assert queue.is_abandoned(1.0)

    def test_drained_but_uncollected_job_is_abandoned(self, tmp_path):
        """Workers finished everything; the coordinator never collected."""
        queue = make_queue(tmp_path)
        queue.write_spec(JobSpec(kind="single", config=SimulationConfig()))
        put_items(queue, 2)
        for _ in range(2):
            claim = queue.claim("w")
            queue.ack(claim, ["result"])
        self._backdate(queue)
        assert queue.is_abandoned(1.0)

    def test_pending_items_keep_a_job_alive(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.write_spec(JobSpec(kind="single", config=SimulationConfig()))
        put_items(queue, 1)
        self._backdate(queue, seconds=3600.0)
        assert not queue.is_abandoned(1.0)

    def test_claimed_items_keep_a_job_alive(self, tmp_path):
        """Even an expired claim is the live coordinator's requeue
        business, never quarantine's."""
        queue = make_queue(tmp_path)
        queue.write_spec(JobSpec(kind="single", config=SimulationConfig()))
        put_items(queue, 1)
        assert queue.claim("w") is not None
        self._backdate(queue, seconds=3600.0)
        assert not queue.is_abandoned(1.0)

    def test_specless_job_is_not_our_call(self, tmp_path):
        queue = make_queue(tmp_path)
        assert not queue.is_abandoned(1.0)

    def test_ttl_validation(self, tmp_path):
        queue = make_queue(tmp_path)
        with pytest.raises(ValueError):
            queue.is_abandoned(0.0)

    def test_quarantine_hides_the_job_from_workers(self, tmp_path):
        from repro.sim.queue import quarantine_abandoned

        queue = make_queue(tmp_path)
        queue.write_spec(JobSpec(kind="single", config=SimulationConfig()))
        self._backdate(queue)
        assert quarantine_abandoned(tmp_path, ttl=1.0) == ["job-test"]
        target = tmp_path / "quarantined-job-test"
        assert target.is_dir()
        assert "abandoned" in (target / "QUARANTINED").read_text()
        # Workers scan job-* names only: the quarantined dir is invisible.
        processed = run_worker(
            tmp_path, poll_interval=0.01, idle_exit=0.1, worker_id="w"
        )
        assert processed == 0
        # And a second sweep finds nothing left to quarantine.
        assert quarantine_abandoned(tmp_path, ttl=1.0) == []

    def test_live_jobs_survive_a_quarantine_sweep(self, tmp_path):
        from repro.sim.queue import quarantine_abandoned

        queue = make_queue(tmp_path)
        queue.write_spec(JobSpec(kind="single", config=SimulationConfig()))
        put_items(queue, 1)
        self._backdate(queue, seconds=3600.0)
        assert quarantine_abandoned(tmp_path, ttl=1.0) == []
        assert queue.job_dir.is_dir()

    def test_worker_job_ttl_quarantines_during_scan(self, tmp_path):
        orphan = make_queue(tmp_path)
        orphan.write_spec(JobSpec(kind="single", config=SimulationConfig()))
        self._backdate(orphan)
        run_worker(
            tmp_path, poll_interval=0.01, idle_exit=0.1, worker_id="w",
            job_ttl=1.0,
        )
        assert not orphan.job_dir.exists()
        assert (tmp_path / "quarantined-job-test").is_dir()


class TestSpecAndHelpers:
    def test_spec_roundtrip(self, tmp_path):
        queue = make_queue(tmp_path)
        spec = JobSpec(kind="sweep", configs=(SimulationConfig(),))
        queue.write_spec(spec)
        assert queue.load_spec() == spec

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            JobSpec(kind="nonsense")
        with pytest.raises(ValueError):
            JobSpec(kind="single")
        with pytest.raises(ValueError):
            JobSpec(kind="sweep", configs=())

    def test_spec_publishes_coordinator_lease(self):
        """Workers pace renewals against the coordinator's lease, which
        therefore travels with the job spec."""
        spec = JobSpec(kind="single", config=SimulationConfig(), lease_timeout=5.0)
        assert spec.lease_timeout == 5.0
        with pytest.raises(ValueError):
            JobSpec(kind="single", config=SimulationConfig(), lease_timeout=0.0)

    def test_item_id_round_trip(self):
        assert position_of(item_id_for(0)) == 0
        assert position_of(item_id_for(123456)) == 123456
        assert sorted(item_id_for(i) for i in (5, 50, 500)) == [
            item_id_for(5), item_id_for(50), item_id_for(500),
        ]

    def test_make_items_preserves_block_tags(self):
        blocks = [(0, ["a", "b"]), (2, ["c"])]
        items = make_items(blocks)
        assert [item.start_index for item in items] == [0, 2]
        assert [item.refs for item in items] == [("a", "b"), ("c",)]
        assert [item.item_id for item in items] == [item_id_for(0), item_id_for(1)]

    def test_done_marker_stops_workers(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.write_spec(JobSpec(kind="single", config=SimulationConfig()))
        put_items(queue, 1)
        queue.mark_done()
        processed = run_worker(
            tmp_path, poll_interval=0.01, idle_exit=0.1, worker_id="w"
        )
        assert processed == 0  # DONE jobs are invisible to workers

    def test_stop_file_exits_worker(self, tmp_path):
        (tmp_path / "STOP").touch()
        start = time.monotonic()
        processed = run_worker(tmp_path, poll_interval=0.01, worker_id="w")
        assert processed == 0
        assert time.monotonic() - start < 5.0  # exited on STOP, not idle

    def test_lease_timeout_validation(self, tmp_path):
        with pytest.raises(ValueError):
            WorkQueue(tmp_path / "q", lease_timeout=0.0)

    def test_missing_directories_read_as_empty(self, tmp_path):
        queue = WorkQueue(tmp_path / "never-created", create=False)
        assert queue.pending_ids() == set()
        assert queue.claim("w") is None
        assert queue.requeue_stale() == []
        assert queue.failed_items() == {}
