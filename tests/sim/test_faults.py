"""The deterministic fault-injection harness (repro/sim/faults.py).

Everything the chaos soak leans on is pinned here directly: fault
plans replay bit-for-bit from their seed (across instances, across
serialization, across salts), the storage facade injects exactly the
failure each rule names, the retry primitive retries exactly the
transient errno set with deterministic jitter, and installation is
scoped and reversible.
"""

import errno
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sim import faults
from repro.sim.faults import (
    FaultPlan,
    FaultRule,
    InjectedCrash,
    RetryPolicy,
    Storage,
    FaultyStorage,
    chaos_plan,
    is_transient,
    retrying,
)


@pytest.fixture(autouse=True)
def clean_facade():
    """Never leak an installed plan into (or out of) a test."""
    faults.uninstall()
    yield
    faults.uninstall()


class TestFaultRule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FaultRule(site="x", kind="explode")

    def test_rejects_bad_prob(self):
        with pytest.raises(ValueError, match="prob"):
            FaultRule(site="x", kind="eio", prob=1.5)

    def test_rejects_bad_crash_mode(self):
        with pytest.raises(ValueError, match="crash_mode"):
            FaultRule(site="x", kind="crash", crash_mode="dunno")

    def test_rejects_bad_limit(self):
        with pytest.raises(ValueError, match="limit"):
            FaultRule(site="x", kind="eio", limit=0)

    def test_payload_round_trip(self):
        rule = FaultRule(
            site="queue.*", kind="torn", prob=0.25, at=(1, 3), limit=2,
            skew=-30.0, keep_fraction=0.75, crash_mode="raise",
        )
        assert FaultRule.from_payload(rule.to_payload()) == rule


class TestFaultPlan:
    def test_same_seed_same_decisions(self):
        def history(plan):
            return [
                plan.decide("queue.put") is not None for _ in range(200)
            ]

        rule = FaultRule(site="queue.put", kind="eio", prob=0.3)
        first = history(FaultPlan(7, (rule,)))
        second = history(FaultPlan(7, (rule,)))
        assert first == second
        assert any(first) and not all(first)

    def test_different_seeds_differ(self):
        rule = FaultRule(site="queue.put", kind="eio", prob=0.3)
        histories = {
            tuple(
                FaultPlan(seed, (rule,)).decide("queue.put") is not None
                for _ in range(100)
            )
            for seed in range(5)
        }
        assert len(histories) > 1

    def test_at_schedule_fires_exactly_there(self):
        plan = FaultPlan(
            0, (FaultRule(site="s", kind="eio", at=(2, 5)),)
        )
        fired = [plan.decide("s") is not None for _ in range(8)]
        assert fired == [False, False, True, False, False, True, False, False]
        assert plan.fired == [("s", "eio", 2), ("s", "eio", 5)]

    def test_limit_caps_total_fires(self):
        plan = FaultPlan(
            0, (FaultRule(site="s", kind="eio", prob=1.0, limit=3),)
        )
        fired = sum(plan.decide("s") is not None for _ in range(10))
        assert fired == 3

    def test_pattern_matches_site_families(self):
        plan = FaultPlan(0, (FaultRule(site="queue.*", kind="eio", prob=1.0),))
        assert plan.decide("queue.put") is not None
        assert plan.decide("queue.ack_rename") is not None
        assert plan.decide("sink.append") is None

    def test_sites_have_independent_streams(self):
        """One site's traffic never perturbs another site's decisions."""
        rule = FaultRule(site="*", kind="eio", prob=0.3)
        solo = FaultPlan(3, (rule,))
        lone = [solo.decide("a") is not None for _ in range(50)]
        plan = FaultPlan(3, (rule,))
        mixed = []
        for _ in range(50):
            plan.decide("b")  # interleaved traffic on another site
            mixed.append(plan.decide("a") is not None)
        assert mixed == lone

    def test_json_round_trip_replays(self):
        rule = FaultRule(site="s", kind="enospc", prob=0.4, limit=5)
        original = FaultPlan(11, (rule,))
        clone = FaultPlan.from_json(original.to_json())
        assert clone.seed == original.seed and clone.rules == original.rules
        first = [original.decide("s") is not None for _ in range(100)]
        second = [clone.decide("s") is not None for _ in range(100)]
        assert first == second

    def test_with_salt_changes_streams_deterministically(self):
        rule = FaultRule(site="s", kind="eio", prob=0.3)
        base = FaultPlan(5, (rule,))
        salted = base.with_salt("worker-1")
        salted_again = FaultPlan(5, (rule,)).with_salt("worker-1")
        a = [base.decide("s") is not None for _ in range(100)]
        b = [salted.decide("s") is not None for _ in range(100)]
        c = [salted_again.decide("s") is not None for _ in range(100)]
        assert b == c
        assert a != b


class TestChaosPlan:
    def test_deterministic_and_bounded(self):
        for seed in range(30):
            plan = chaos_plan(seed)
            again = chaos_plan(seed)
            assert plan.to_json() == again.to_json()
            assert 3 <= len(plan.rules) <= 6
            # At most one rule per site, so no site can out-fire the
            # retry budget.
            sites = [rule.site for rule in plan.rules]
            assert len(sites) == len(set(sites))
            for rule in plan.rules:
                if rule.kind in ("eio", "enospc", "torn"):
                    assert rule.limit is not None and rule.limit <= 5

    def test_crash_mode_stamped(self):
        for seed in range(50):
            for rule in chaos_plan(seed, crash_mode="raise").rules:
                if rule.kind == "crash":
                    assert rule.crash_mode == "raise"

    def test_seeds_cover_distinct_mixes(self):
        mixes = {
            tuple(sorted((r.site, r.kind) for r in chaos_plan(seed).rules))
            for seed in range(20)
        }
        assert len(mixes) >= 10


class TestRetrying:
    def test_transient_errors_retry_to_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError(errno.EIO, "injected")
            return "done"

        policy = RetryPolicy(attempts=5, base_delay=0.0)
        assert retrying("t", flaky, policy=policy) == "done"
        assert len(calls) == 3

    def test_budget_exhaustion_raises_last_error(self):
        def always():
            raise OSError(errno.ENOSPC, "full")

        policy = RetryPolicy(attempts=3, base_delay=0.0)
        with pytest.raises(OSError) as info:
            retrying("t", always, policy=policy)
        assert info.value.errno == errno.ENOSPC

    def test_enoent_is_not_retried(self):
        calls = []

        def racy():
            calls.append(1)
            raise FileNotFoundError(errno.ENOENT, "lost the race")

        policy = RetryPolicy(attempts=5, base_delay=0.0)
        with pytest.raises(FileNotFoundError):
            retrying("t", racy, policy=policy)
        assert len(calls) == 1

    def test_on_retry_runs_before_each_retry(self):
        repairs = []
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError(errno.EIO, "torn")
            return "ok"

        retrying(
            "t",
            flaky,
            policy=RetryPolicy(attempts=5, base_delay=0.0),
            on_retry=lambda error: repairs.append(error.errno),
        )
        assert repairs == [errno.EIO, errno.EIO]

    def test_jitter_is_deterministic_and_bounded(self):
        values = [faults._jitter("site", n) for n in range(1, 20)]
        assert values == [faults._jitter("site", n) for n in range(1, 20)]
        assert all(0.5 <= v < 1.5 for v in values)
        assert faults._jitter("other", 1) != faults._jitter("site", 1)

    def test_is_transient_classifier(self):
        assert is_transient(OSError(errno.EIO, "x"))
        assert is_transient(OSError(errno.ENOSPC, "x"))
        assert is_transient(OSError(errno.ESTALE, "x"))
        assert not is_transient(OSError(errno.ENOENT, "x"))
        assert not is_transient(ValueError("x"))


class TestStorageFacade:
    def test_passthrough_primitives(self, tmp_path):
        store = Storage()
        source = tmp_path / "a"
        source.write_bytes(b"payload")
        assert store.exists(source)
        assert "a" in store.listdir(tmp_path)
        assert store.mtime(source) > 0
        store.rename(source, tmp_path / "b")
        assert not store.exists(source)
        store.touch(tmp_path / "c")
        store.utime(tmp_path / "c")
        store.unlink(tmp_path / "c")
        store.crash_point("anywhere")  # no-op without a plan

    def test_eio_and_enospc_injection(self, tmp_path):
        plan = FaultPlan(
            0,
            (
                FaultRule(site="boom.eio", kind="eio", at=(0,)),
                FaultRule(site="boom.enospc", kind="enospc", at=(0,)),
            ),
        )
        store = FaultyStorage(plan)
        (tmp_path / "x").write_bytes(b"")
        with pytest.raises(OSError) as info:
            store.rename(tmp_path / "x", tmp_path / "y", site="boom.eio")
        assert info.value.errno == errno.EIO
        assert (tmp_path / "x").exists()  # fault fired BEFORE the op
        with pytest.raises(OSError) as info:
            store.utime(tmp_path / "x", site="boom.enospc")
        assert info.value.errno == errno.ENOSPC
        # Streams advance past the scheduled fire: next calls succeed.
        store.rename(tmp_path / "x", tmp_path / "y", site="boom.eio")
        assert (tmp_path / "y").exists()

    def test_hide_masks_observation_not_state(self, tmp_path):
        target = tmp_path / "present"
        target.write_bytes(b"")
        plan = FaultPlan(0, (FaultRule(site="look", kind="hide", at=(0, 1)),))
        store = FaultyStorage(plan)
        assert store.exists(target, site="look") is False
        assert store.listdir(tmp_path, site="look") == []
        assert target.exists()  # the file was there all along
        assert store.exists(target, site="look") is True

    def test_skew_offsets_mtime(self, tmp_path):
        target = tmp_path / "clock"
        target.write_bytes(b"")
        real = target.stat().st_mtime
        plan = FaultPlan(
            0, (FaultRule(site="clock", kind="skew", at=(0,), skew=45.0),)
        )
        store = FaultyStorage(plan)
        assert store.mtime(target, site="clock") == pytest.approx(real + 45.0)
        assert store.mtime(target, site="clock") == pytest.approx(real)

    def test_torn_write_keeps_prefix_and_raises(self, tmp_path):
        target = tmp_path / "torn"
        plan = FaultPlan(
            0,
            (
                FaultRule(
                    site="w", kind="torn", at=(0,), keep_fraction=0.5
                ),
            ),
        )
        store = FaultyStorage(plan)
        data = b"0123456789"
        with open(target, "wb") as handle:
            with pytest.raises(OSError) as info:
                store.write(handle, data, site="w")
        assert info.value.errno == errno.EIO
        assert target.read_bytes() == data[:5]
        with open(target, "wb") as handle:
            store.write(handle, data, site="w")
        assert target.read_bytes() == data

    def test_torn_pread_returns_short_buffer(self, tmp_path):
        target = tmp_path / "store"
        target.write_bytes(b"0123456789")
        plan = FaultPlan(
            0,
            (FaultRule(site="r", kind="torn", at=(0,), keep_fraction=0.5),),
        )
        store = FaultyStorage(plan)
        fd = os.open(target, os.O_RDONLY)
        try:
            assert store.pread(fd, 10, 0, site="r") == b"01234"
            assert store.pread(fd, 10, 0, site="r") == b"0123456789"
        finally:
            os.close(fd)

    def test_crash_raise_mode(self):
        plan = FaultPlan(
            0,
            (
                FaultRule(
                    site="point", kind="crash", at=(0,), crash_mode="raise"
                ),
            ),
        )
        store = FaultyStorage(plan)
        with pytest.raises(InjectedCrash):
            store.crash_point("point")
        store.crash_point("point")  # only invocation 0 crashes

    def test_crash_exit_mode_kills_the_process(self, tmp_path):
        """Exit-mode crashes are real process deaths with the marker
        status (checked in a subprocess so the suite survives)."""
        plan = FaultPlan(
            0, (FaultRule(site="die", kind="crash", at=(0,), crash_mode="exit"),)
        )
        script = (
            "from repro.sim import faults\n"
            f"faults.install(faults.FaultPlan.from_json({plan.to_json()!r}))\n"
            "faults.crash_point('die')\n"
            "raise SystemExit(0)\n"
        )
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ, PYTHONPATH=str(src))
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, timeout=60
        )
        assert proc.returncode == faults.INJECTED_CRASH_EXIT_CODE


class TestInstallation:
    def test_install_and_uninstall(self):
        assert isinstance(faults.storage(), Storage)
        assert faults.active_plan() is None
        plan = faults.install(FaultPlan(0, ()))
        assert faults.active_plan() is plan
        faults.uninstall()
        assert faults.active_plan() is None

    def test_injected_context_always_restores(self):
        with pytest.raises(RuntimeError):
            with faults.injected(FaultPlan(0, ())):
                assert faults.active_plan() is not None
                raise RuntimeError("boom")
        assert faults.active_plan() is None

    def test_install_from_env_json_and_file(self, tmp_path):
        plan = chaos_plan(3)
        installed = faults.install_from_env({faults.PLAN_ENV_VAR: plan.to_json()})
        assert installed is not None and installed.seed == plan.seed
        faults.uninstall()
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        installed = faults.install_from_env(
            {faults.PLAN_ENV_VAR: f"@{path}"}
        )
        assert installed is not None and installed.rules == plan.rules
        faults.uninstall()
        assert faults.install_from_env({}) is None

    def test_install_from_env_applies_salt(self):
        plan = FaultPlan(9, (FaultRule(site="s", kind="eio", prob=0.3),))
        salted = faults.install_from_env(
            {
                faults.PLAN_ENV_VAR: plan.to_json(),
                faults.SALT_ENV_VAR: "worker-2",
            }
        )
        assert salted is not None
        assert salted.seed == plan.with_salt("worker-2").seed
        assert salted.seed != plan.seed
