"""Fleet self-protection under injected faults.

Queue transitions retried through transient storage errors, the
requeue-vs-ack race under stale rename visibility (the NFS-ish case),
failure sidecars, the results pack, worker ``--max-rss`` self-limits,
work stealing across queue roots, and distinct worker exit codes --
each driven deterministically through :mod:`repro.sim.faults` plans,
no timing dice.
"""

import json
import os
import pickle
import time

import pytest

from repro.sim import faults
from repro.sim.engine import SimulationConfig
from repro.sim.faults import FaultPlan, FaultRule, InjectedCrash
from repro.sim.queue import (
    FailureRecord,
    JobSpec,
    WorkItem,
    WorkQueue,
    item_id_for,
)
from repro.sim import worker as worker_module
from repro.sim.worker import (
    EXIT_CLEAN,
    EXIT_MAX_TASKS,
    EXIT_RSS_LIMIT,
    EXIT_STOP_FILE,
    WorkerExit,
    current_rss_bytes,
    parse_size,
    run_worker,
)


@pytest.fixture(autouse=True)
def clean_facade():
    faults.uninstall()
    yield
    faults.uninstall()


def make_queue(tmp_path, lease_timeout=0.2, name="job-test"):
    return WorkQueue(tmp_path / name, lease_timeout=lease_timeout)


def put_items(queue, count):
    items = [
        WorkItem(item_id=item_id_for(i), start_index=i, refs=(f"ref-{i}",))
        for i in range(count)
    ]
    for item in items:
        queue.put(item)
    return items


def publish_job(root, name="job-a", count=1):
    """A runnable single-config job with ``count`` empty-ref items."""
    queue = WorkQueue(root / name, lease_timeout=30.0)
    queue.write_spec(JobSpec(kind="single", config=SimulationConfig()))
    for i in range(count):
        queue.put(WorkItem(item_id=item_id_for(i), start_index=i, refs=()))
    return queue


class TestRetriedTransitions:
    def test_put_retries_injected_enospc(self, tmp_path):
        plan = FaultPlan(
            0, (FaultRule(site="queue.put", kind="enospc", at=(0,)),)
        )
        with faults.injected(plan):
            queue = make_queue(tmp_path)
            put_items(queue, 1)
        assert queue.pending_ids() == {item_id_for(0)}
        assert ("queue.put", "enospc", 0) in plan.fired

    def test_result_publication_retries_torn_write(self, tmp_path):
        plan = FaultPlan(
            0, (FaultRule(site="queue.result", kind="torn", at=(0,)),)
        )
        queue = make_queue(tmp_path)
        put_items(queue, 1)
        claim = queue.claim("w")
        with faults.injected(plan):
            queue.ack(claim, ["payload"])
        assert queue.load_result(item_id_for(0)) == ["payload"]
        assert queue.acked_ids() == {item_id_for(0)}
        # No partial temp file survived the torn attempt.
        leftovers = [
            name
            for name in os.listdir(queue.results_dir)
            if not name.endswith(".out")
        ]
        assert leftovers == []

    def test_claim_rename_retries_transient_eio(self, tmp_path):
        plan = FaultPlan(
            0,
            (FaultRule(site="queue.claim_rename", kind="eio", at=(0,)),),
        )
        queue = make_queue(tmp_path)
        put_items(queue, 1)
        with faults.injected(plan):
            claim = queue.claim("w")
        assert claim is not None and claim.item_id == item_id_for(0)
        assert plan.fired  # the fault really fired, and was survived

    def test_fs_now_skew_is_confined_to_scheduled_reads(self, tmp_path):
        # Invocation 0 is the probe touch, invocation 1 the mtime read.
        plan = FaultPlan(
            0,
            (FaultRule(site="queue.fs_now", kind="skew", at=(1,), skew=45.0),),
        )
        queue = make_queue(tmp_path)
        with faults.injected(plan):
            skewed = queue.fs_now()
            normal = queue.fs_now()
        assert skewed > time.time() + 40.0
        assert abs(normal - time.time()) < 5.0

    def test_fs_now_falls_back_to_local_clock(self, tmp_path, caplog):
        plan = FaultPlan(
            0, (FaultRule(site="queue.fs_now", kind="eio", prob=1.0),)
        )
        queue = make_queue(tmp_path)
        with caplog.at_level("DEBUG", logger="repro.sim.queue"):
            with faults.injected(plan):
                now = queue.fs_now()
        assert abs(now - time.time()) < 5.0
        assert any("queue.fs_now" in record.message for record in caplog.records)

    def test_lease_renew_retries_then_survives(self, tmp_path):
        plan = FaultPlan(
            0, (FaultRule(site="lease.renew", kind="eio", at=(0,)),)
        )
        queue = make_queue(tmp_path)
        put_items(queue, 1)
        claim = queue.claim("w")
        with faults.injected(plan):
            assert claim.renew() is True
        claim.path.unlink()
        assert claim.renew() is False  # gone is gone, not retried


class TestRequeueAckVisibilityRace:
    def test_requeue_stale_vs_ack_under_stale_visibility(self, tmp_path):
        """The NFS-ish race: a worker wrote its result and died before
        acking, and the coordinator's host does not *see* the result
        file yet.  The coordinator requeues; a second worker re-runs
        and acks idempotently.  The item must end acked exactly once --
        never lost, never duplicated."""
        queue = make_queue(tmp_path, lease_timeout=0.05)
        put_items(queue, 1)
        claim = queue.claim("w1")

        # Worker 1 publishes its result, then dies before the ack
        # rename (an injected crash at the labeled point).
        crash = FaultPlan(
            0,
            (
                FaultRule(
                    site="queue.ack.crash",
                    kind="crash",
                    at=(0,),
                    crash_mode="raise",
                ),
            ),
        )
        with faults.injected(crash):
            with pytest.raises(InjectedCrash):
                queue.ack(claim, ["block"])
        assert queue.result_ids() == {item_id_for(0)}
        assert queue.claimed_ids() == {item_id_for(0)}  # never acked

        # The coordinator runs requeue_stale while the result rename is
        # not yet visible from its host: it must requeue (not lose) the
        # item.
        time.sleep(0.06)
        hidden = FaultPlan(
            0,
            (FaultRule(site="queue.result_visible", kind="hide", at=(0,)),),
        )
        with faults.injected(hidden):
            requeued = queue.requeue_stale()
        assert requeued == [item_id_for(0)]
        assert queue.pending_ids() == {item_id_for(0)}

        # Worker 2 re-runs the (pure) item and acks over the first
        # result -- idempotent, byte-identical.
        second = queue.claim("w2")
        assert second is not None
        queue.ack(second, ["block"])

        # Visibility restored: the coordinator settles.  The item is
        # acked exactly once and lives in exactly one state directory.
        assert queue.requeue_stale() == []
        assert queue.acked_ids() == {item_id_for(0)}
        assert queue.pending_ids() == set()
        assert queue.claimed_ids() == set()
        assert queue.load_result(item_id_for(0)) == ["block"]
        locations = [
            directory
            for directory in (
                queue.pending_dir,
                queue.claimed_dir,
                queue.acked_dir,
                queue.failed_dir,
            )
            if (directory / f"{item_id_for(0)}.task").exists()
        ]
        assert locations == [queue.acked_dir]

    def test_dead_worker_with_visible_result_is_acked_on_behalf(self, tmp_path):
        """Control for the race above: with visibility intact, the
        coordinator honours the orphaned result instead of re-running."""
        queue = make_queue(tmp_path, lease_timeout=0.05)
        put_items(queue, 1)
        claim = queue.claim("w1")
        crash = FaultPlan(
            0,
            (
                FaultRule(
                    site="queue.ack.crash",
                    kind="crash",
                    at=(0,),
                    crash_mode="raise",
                ),
            ),
        )
        with faults.injected(crash):
            with pytest.raises(InjectedCrash):
                queue.ack(claim, ["block"])
        time.sleep(0.06)
        assert queue.requeue_stale() == []  # acked on behalf, no requeue
        assert queue.acked_ids() == {item_id_for(0)}


class TestFailureSidecar:
    def test_discard_writes_structured_sidecar(self, tmp_path):
        queue = make_queue(tmp_path)
        put_items(queue, 1)
        claim = queue.claim("w-7")
        try:
            raise ValueError("poisoned payload")
        except ValueError as error:
            queue.discard(
                claim,
                f"corrupt work item: {error}",
                exception=error,
                worker_id="w-7",
                attempts=3,
            )
        sidecar = queue.failed_dir / f"{item_id_for(0)}.error.json"
        data = json.loads(sidecar.read_text(encoding="utf-8"))
        assert data["exception_type"] == "ValueError"
        assert "poisoned payload" in data["traceback"]
        assert data["worker_id"] == "w-7"
        assert data["attempts"] == 3

        failures = queue.failed_items()
        record = failures[item_id_for(0)]
        assert isinstance(record, FailureRecord)
        assert "corrupt work item" in record  # still a plain str
        assert record.exception_type == "ValueError"
        assert record.attempts == 3
        assert record.worker_id == "w-7"
        assert "ValueError" in record.traceback_text

    def test_legacy_error_text_still_surfaces(self, tmp_path):
        queue = make_queue(tmp_path)
        name = f"{item_id_for(0)}.task"
        (queue.failed_dir / name).write_bytes(b"junk")
        (queue.failed_dir / f"{name}.error").write_text("old-style reason\n")
        failures = queue.failed_items()
        assert failures[item_id_for(0)] == "old-style reason"
        assert failures[item_id_for(0)].exception_type is None

    def test_worker_discard_records_attempt_count(self, tmp_path):
        """A poisoned item discarded by a real worker carries the
        fleet-wide attempt count from the requeue log."""
        queue = publish_job(tmp_path, count=1)
        # Corrupt the payload and fake two earlier requeues.
        (queue.pending_dir / f"{item_id_for(0)}.task").write_bytes(b"garbage")
        queue._log_requeues([item_id_for(0), item_id_for(0)])
        run_worker(tmp_path, poll_interval=0.01, idle_exit=0.2, worker_id="w")
        record = queue.failed_items()[item_id_for(0)]
        assert "corrupt work item" in record
        assert record.attempts == 3  # 2 requeues + this attempt
        assert record.worker_id == "w"
        assert record.exception_type == "QueueItemError"


class TestResultsPack:
    def ack_results(self, queue, count):
        put_items(queue, count)
        for _ in range(count):
            claim = queue.claim("w")
            queue.ack(claim, [f"payload-{claim.item_id}"])

    def test_compaction_preserves_every_read_path(self, tmp_path):
        queue = make_queue(tmp_path)
        self.ack_results(queue, 4)
        ids = [item_id_for(i) for i in range(4)]
        assert queue.compact_results(ids[:3]) == 3
        # Loose files gone for the compacted, kept for the rest.
        loose = {
            name
            for name in os.listdir(queue.results_dir)
            if name.endswith(".out")
        }
        assert loose == {f"{item_id_for(3)}.out"}
        assert queue.result_ids() == set(ids)
        for item_id in ids:
            assert queue.load_result(item_id) == [f"payload-{item_id}"]
        assert set(ids) <= queue.known_item_ids()
        # A fresh instance (restarted coordinator) re-indexes the pack.
        reopened = WorkQueue(queue.job_dir, lease_timeout=0.2, create=False)
        assert reopened.result_ids() == set(ids)
        assert reopened.load_result(ids[0]) == [f"payload-{ids[0]}"]

    def test_compaction_is_idempotent_and_duplicate_tolerant(self, tmp_path):
        queue = make_queue(tmp_path)
        self.ack_results(queue, 2)
        ids = [item_id_for(i) for i in range(2)]
        assert queue.compact_results(ids) == 2
        assert queue.compact_results(ids) == 0  # nothing loose left
        # Crash-between-append-and-unlink leaves a loose duplicate:
        # loose wins on load, sets dedup on ids.
        (queue.results_dir / f"{ids[0]}.out").write_bytes(
            pickle.dumps([f"payload-{ids[0]}"])
        )
        assert queue.result_ids() == set(ids)
        assert queue.load_result(ids[0]) == [f"payload-{ids[0]}"]

    def test_torn_pack_append_is_repaired_on_retry(self, tmp_path):
        plan = FaultPlan(
            0, (FaultRule(site="queue.compact", kind="torn", at=(0,)),)
        )
        queue = make_queue(tmp_path)
        self.ack_results(queue, 3)
        ids = [item_id_for(i) for i in range(3)]
        with faults.injected(plan):
            assert queue.compact_results(ids) == 3
        assert plan.fired  # the first append really tore
        reopened = WorkQueue(queue.job_dir, lease_timeout=0.2, create=False)
        assert reopened.result_ids() == set(ids)
        for item_id in ids:
            assert reopened.load_result(item_id) == [f"payload-{item_id}"]

    def test_requeue_stale_honours_packed_results(self, tmp_path):
        """A dead worker's result that was already compacted still
        counts as finished work: ack on behalf, never re-run."""
        queue = make_queue(tmp_path, lease_timeout=0.05)
        put_items(queue, 1)
        claim = queue.claim("w")
        crash = FaultPlan(
            0,
            (
                FaultRule(
                    site="queue.ack.crash",
                    kind="crash",
                    at=(0,),
                    crash_mode="raise",
                ),
            ),
        )
        with faults.injected(crash):
            with pytest.raises(InjectedCrash):
                queue.ack(claim, ["block"])
        queue.compact_results([item_id_for(0)])
        assert not (queue.results_dir / f"{item_id_for(0)}.out").exists()
        time.sleep(0.06)
        assert queue.requeue_stale() == []
        assert queue.acked_ids() == {item_id_for(0)}
        assert queue.load_result(item_id_for(0)) == ["block"]


class TestWorkerExitCodes:
    def test_worker_exit_is_an_int_with_reason(self):
        result = WorkerExit(3, "max-tasks")
        assert result == 3
        assert result.reason == "max-tasks"
        assert result.code == EXIT_MAX_TASKS
        with pytest.raises(ValueError):
            WorkerExit(0, "vanished")

    def test_stop_file_exit(self, tmp_path):
        (tmp_path / "STOP").touch()
        result = run_worker(tmp_path, poll_interval=0.01, worker_id="w")
        assert result == 0 and result.reason == "stop-file"
        assert result.code == EXIT_STOP_FILE

    def test_idle_exit_is_clean(self, tmp_path):
        result = run_worker(
            tmp_path, poll_interval=0.01, idle_exit=0.05, worker_id="w"
        )
        assert result.reason == "clean" and result.code == EXIT_CLEAN

    def test_max_tasks_exit(self, tmp_path):
        publish_job(tmp_path, count=2)
        result = run_worker(
            tmp_path, poll_interval=0.01, max_tasks=1, worker_id="w"
        )
        assert result == 1 and result.reason == "max-tasks"
        assert result.code == EXIT_MAX_TASKS


class TestMaxRss:
    def test_parse_size(self):
        assert parse_size("1048576") == 1024**2
        assert parse_size("800M") == 800 * 1024**2
        assert parse_size("2G") == 2 * 1024**3
        assert parse_size("1.5g") == int(1.5 * 1024**3)
        assert parse_size("64KB") == 64 * 1024

    def test_current_rss_is_measurable(self):
        rss = current_rss_bytes()
        assert rss is not None and rss > 1024**2  # a python process > 1 MiB

    def test_over_limit_before_claim_exits_without_claiming(self, tmp_path):
        queue = publish_job(tmp_path, count=1)
        result = run_worker(
            tmp_path, poll_interval=0.01, max_rss=1, worker_id="w"
        )
        assert result == 0 and result.reason == "rss-limit"
        assert result.code == EXIT_RSS_LIMIT
        assert queue.pending_ids() == {item_id_for(0)}  # untouched

    def test_over_limit_after_claim_releases_then_exits(
        self, tmp_path, monkeypatch
    ):
        """Crossing the limit between claim and execute drains
        gracefully: the claim goes straight back to pending."""
        queue = publish_job(tmp_path, count=1)
        readings = iter([10, 10**12])  # pre-claim fine, post-claim over
        monkeypatch.setattr(
            worker_module, "current_rss_bytes", lambda: next(readings)
        )
        result = run_worker(
            tmp_path, poll_interval=0.01, max_rss=1024, worker_id="w"
        )
        assert result == 0 and result.reason == "rss-limit"
        assert queue.pending_ids() == {item_id_for(0)}  # released, not leased
        assert queue.claimed_ids() == set()

    def test_limit_crossed_after_work_exits_with_count(
        self, tmp_path, monkeypatch
    ):
        queue = publish_job(tmp_path, count=2)
        readings = iter([10, 10, 10**12])
        monkeypatch.setattr(
            worker_module, "current_rss_bytes", lambda: next(readings)
        )
        result = run_worker(
            tmp_path, poll_interval=0.01, max_rss=1024, worker_id="w"
        )
        assert result == 1 and result.reason == "rss-limit"
        assert queue.result_ids() == {item_id_for(0)}


class TestWorkStealing:
    def test_steals_from_second_root_when_home_is_idle(self, tmp_path):
        home = tmp_path / "home"
        away = tmp_path / "away"
        home.mkdir()
        queue = publish_job(away, count=1)
        result = run_worker(
            [home, away], poll_interval=0.01, idle_exit=0.3, worker_id="w"
        )
        assert result == 1
        assert queue.acked_ids() == {item_id_for(0)}

    def test_home_work_wins_over_steal_targets(self, tmp_path):
        """Scan order is home-first even when the foreign job's name
        sorts earlier."""
        home = tmp_path / "home"
        away = tmp_path / "away"
        home_queue = publish_job(home, name="job-zzz", count=1)
        away_queue = publish_job(away, name="job-aaa", count=1)
        result = run_worker(
            [home, away], poll_interval=0.01, max_tasks=1, worker_id="w"
        )
        assert result == 1
        assert home_queue.acked_ids() == {item_id_for(0)}
        assert away_queue.acked_ids() == set()

    def test_stop_file_only_honoured_in_home_root(self, tmp_path):
        home = tmp_path / "home"
        away = tmp_path / "away"
        home.mkdir()
        away.mkdir()
        (away / "STOP").touch()
        result = run_worker(
            [home, away], poll_interval=0.01, idle_exit=0.05, worker_id="w"
        )
        assert result.reason == "clean"  # a neighbour's STOP is not ours
        (home / "STOP").touch()
        result = run_worker(
            [home, away], poll_interval=0.01, idle_exit=5.0, worker_id="w"
        )
        assert result.reason == "stop-file"


class TestFleetPlanPropagation:
    def test_spawned_workers_get_distinct_fault_salts(
        self, tmp_path, monkeypatch
    ):
        """When a chaos plan rides the environment, each spawned worker
        gets a spawn-ordinal salt so the fleet's fault streams are
        decorrelated but still deterministic."""
        from repro.sim import backends as backends_module
        from repro.sim.backends import DistributedBackend
        from repro.sim.faults import chaos_plan

        captured = []

        class FakeProc:
            pid = 0

            def poll(self):
                return None

            def terminate(self):
                pass

            def wait(self, timeout=None):
                return 0

            def kill(self):
                pass

        def fake_popen(command, env=None, **kwargs):
            captured.append(env)
            return FakeProc()

        monkeypatch.setattr(backends_module.subprocess, "Popen", fake_popen)
        monkeypatch.setenv(faults.PLAN_ENV_VAR, chaos_plan(1).to_json())
        backend = DistributedBackend(2, queue_dir=tmp_path / "q")
        try:
            backend._ensure_workers(tmp_path / "q")
        finally:
            backend.close()
        salts = [env[faults.SALT_ENV_VAR] for env in captured]
        assert salts == ["worker-1", "worker-2"]

    def test_no_salt_without_a_plan(self, tmp_path, monkeypatch):
        from repro.sim import backends as backends_module
        from repro.sim.backends import DistributedBackend

        captured = []

        class FakeProc:
            pid = 0

            def poll(self):
                return None

            def terminate(self):
                pass

            def wait(self, timeout=None):
                return 0

            def kill(self):
                pass

        def fake_popen(command, env=None, **kwargs):
            captured.append(env)
            return FakeProc()

        monkeypatch.setattr(backends_module.subprocess, "Popen", fake_popen)
        monkeypatch.delenv(faults.PLAN_ENV_VAR, raising=False)
        backend = DistributedBackend(1, queue_dir=tmp_path / "q")
        try:
            backend._ensure_workers(tmp_path / "q")
        finally:
            backend.close()
        assert faults.SALT_ENV_VAR not in captured[0]


class TestWorkerCrashPoints:
    def test_crash_after_claim_then_recovery(self, tmp_path):
        """An injected crash right after claiming leaves a lease that
        expires into a requeue; a healthy worker then finishes the
        item."""
        queue = publish_job(tmp_path, count=1)
        queue.lease_timeout = 0.05
        plan = FaultPlan(
            0,
            (
                FaultRule(
                    site="worker.claimed",
                    kind="crash",
                    at=(0,),
                    crash_mode="raise",
                ),
            ),
        )
        with faults.injected(plan):
            with pytest.raises(InjectedCrash):
                run_worker(tmp_path, poll_interval=0.01, worker_id="w1")
        assert queue.claimed_ids() == {item_id_for(0)}
        time.sleep(0.06)
        stale = WorkQueue(queue.job_dir, lease_timeout=0.05, create=False)
        assert stale.requeue_stale() == [item_id_for(0)]
        result = run_worker(
            tmp_path, poll_interval=0.01, max_tasks=1, worker_id="w2"
        )
        assert result == 1
        assert stale.acked_ids() == {item_id_for(0)}
