"""Service mode (repro/sim/service.py): epochs, exactness, resume.

The contract under test: a long-running coordinator over an unbounded
session stream emits one delta per epoch, exactly once, and the merge
of everything emitted (the service's cumulative fold) is **bit for
bit** the batch result over the same finite trace -- including across
SIGKILL-and-restart at every crash window, on serial and distributed
backends.
"""

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro.sim.engine import SimulationConfig, Simulator
from repro.sim.policies import PAPER_POLICY, EpochPolicy
from repro.sim.service import (
    EpochResult,
    JsonlSink,
    ServiceCheckpoint,
    ServiceConfig,
    SimulationService,
    result_from_payload,
    result_to_payload,
    serve_jsonl,
)
from repro.trace.events import SECONDS_PER_DAY, Trace
from repro.trace.generator import GeneratorConfig, TraceGenerator
from repro.trace.loader import append_jsonl_end, save_jsonl, session_to_record

EPOCH = SECONDS_PER_DAY


@pytest.fixture(scope="module")
def trace():
    config = GeneratorConfig(
        num_users=300, num_items=30, days=3, expected_sessions=1_500, seed=7
    )
    return TraceGenerator(config=config).generate()


@pytest.fixture(scope="module")
def service_config(trace):
    return ServiceConfig(
        simulation=SimulationConfig(),
        epoch_seconds=EPOCH,
        horizon=trace.horizon,
    )


@pytest.fixture(scope="module")
def batch_result(trace, service_config):
    """The reference: one batch run under the epoch-scoped config."""
    return Simulator(service_config.scoped_config).run(trace)


def run_service(config, state_dir, sessions, subscribers=()):
    service = SimulationService(config, state_dir, subscribers=subscribers)
    try:
        service.run(iter(sessions))
        return service, service.result()
    finally:
        service.close()


class TestEpochPolicy:
    def test_scopes_swarm_identity_to_the_epoch(self, trace):
        policy = EpochPolicy(base=PAPER_POLICY, epoch_seconds=EPOCH)
        session = trace.sessions[0]
        key = policy.key_for(session)
        assert key.epoch == int(session.start // EPOCH)
        assert replace(key, epoch=None) == PAPER_POLICY.key_for(session)

    def test_sort_key_is_epoch_major(self, trace):
        """The property batch parity rests on: canonical task order
        under an epoch policy is the concatenation of per-epoch orders."""
        policy = EpochPolicy(base=PAPER_POLICY, epoch_seconds=EPOCH)
        keys = sorted(
            {policy.key_for(s) for s in trace.sessions},
            key=lambda key: key.sort_key(),
        )
        epochs = [key.epoch for key in keys]
        assert epochs == sorted(epochs)
        # Epoch-less (batch) keys sort ahead of every scoped key.
        base = PAPER_POLICY.key_for(trace.sessions[0])
        assert base.sort_key() < keys[0].sort_key()

    def test_epoch_bounds(self):
        policy = EpochPolicy(base=PAPER_POLICY, epoch_seconds=100.0)
        assert policy.epoch_of(0.0) == 0
        assert policy.epoch_of(99.999) == 0
        assert policy.epoch_of(100.0) == 1
        assert policy.epoch_bounds(2) == (200.0, 300.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EpochPolicy(base=PAPER_POLICY, epoch_seconds=0.0)


class TestServiceConfig:
    def test_scoped_config_wraps_the_policy(self, service_config):
        scoped = service_config.scoped_config
        assert isinstance(scoped.policy, EpochPolicy)
        assert scoped.policy.base == PAPER_POLICY
        assert scoped.policy.epoch_seconds == EPOCH

    def test_rejects_a_prescoped_policy(self):
        scoped = SimulationConfig(
            policy=EpochPolicy(base=PAPER_POLICY, epoch_seconds=EPOCH)
        )
        with pytest.raises(ValueError, match="base"):
            ServiceConfig(simulation=scoped, epoch_seconds=EPOCH)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(epoch_seconds=0.0)
        with pytest.raises(ValueError):
            ServiceConfig(horizon=-1.0)
        with pytest.raises(ValueError):
            ServiceConfig(allowed_lateness=-1.0)
        with pytest.raises(ValueError):
            ServiceConfig(late_policy="buffer")


class TestBatchParity:
    """The tentpole claim: cumulative == batch, bit for bit."""

    def test_cumulative_result_identical_to_batch(
        self, trace, service_config, batch_result, tmp_path
    ):
        _, cumulative = run_service(service_config, tmp_path, trace.sessions)
        assert cumulative.identical_to(batch_result)

    def test_epochs_are_contiguous_and_cover_the_trace(
        self, trace, service_config, tmp_path
    ):
        events = []
        service, _ = run_service(
            service_config, tmp_path, trace.sessions, subscribers=[events.append]
        )
        assert [e.epoch for e in events] == list(range(len(events)))
        assert sum(e.sessions for e in events) == len(trace)
        assert service.emitted == len(events)
        assert service.late_sessions == 0

    def test_each_delta_is_the_batch_result_over_its_epoch(
        self, trace, service_config, tmp_path
    ):
        events = []
        run_service(
            service_config, tmp_path, trace.sessions, subscribers=[events.append]
        )
        for event in events:
            sub = [
                s for s in trace.sessions if int(s.start // EPOCH) == event.epoch
            ]
            reference = Simulator(service_config.scoped_config).run_stream(
                iter(sub), trace.horizon
            )
            assert event.delta.identical_to(reference)

    def test_empty_epochs_are_emitted_not_skipped(
        self, trace, service_config, tmp_path
    ):
        """A day with no sessions still yields its (empty) delta -- the
        emission sequence must be gap-free for subscribers to trust it."""
        gappy = [s for s in trace.sessions if int(s.start // EPOCH) != 1]
        events = []
        _, cumulative = run_service(
            service_config, tmp_path, gappy, subscribers=[events.append]
        )
        assert [e.epoch for e in events] == list(range(len(events)))
        middle = events[1]
        assert middle.sessions == 0
        assert middle.delta.total.demanded_bits == 0.0
        reference = Simulator(service_config.scoped_config).run(
            Trace.from_sessions(gappy, horizon=trace.horizon)
        )
        assert cumulative.identical_to(reference)

    def test_result_is_a_snapshot_not_a_finalization(
        self, trace, service_config, tmp_path
    ):
        """result() mid-stream must not wedge the cumulative fold."""
        service = SimulationService(service_config, tmp_path)
        try:
            for session in trace.sessions[:800]:
                service.ingest(session)
            partial = service.result()
            assert partial.total.sessions > 0
            for session in trace.sessions[800:]:
                service.ingest(session)
            service.flush()
            final = service.result()
        finally:
            service.close()
        assert final.total.sessions == len(trace)


class TestResultCodec:
    def test_round_trip_is_exact(self, batch_result):
        payload = json.loads(json.dumps(result_to_payload(batch_result)))
        assert result_from_payload(payload).identical_to(batch_result)

    def test_equal_results_serialize_identically(self, batch_result):
        a = json.dumps(result_to_payload(batch_result), sort_keys=True)
        b = json.dumps(result_to_payload(batch_result), sort_keys=True)
        assert a == b


class TestJsonlSink:
    def _event(self, batch_result, epoch):
        return EpochResult(
            epoch=epoch,
            epoch_start=epoch * EPOCH,
            epoch_end=(epoch + 1) * EPOCH,
            horizon=3 * EPOCH,
            sessions=batch_result.total.sessions,
            delta=batch_result,
        )

    def test_appends_and_reads_back(self, batch_result, tmp_path):
        sink = JsonlSink(tmp_path / "out.jsonl")
        sink(self._event(batch_result, 0))
        sink(self._event(batch_result, 1))
        records = JsonlSink.read(tmp_path / "out.jsonl")
        assert [r["epoch"] for r in records] == [0, 1]
        assert result_from_payload(records[0]["result"]).identical_to(
            batch_result
        )

    def test_replayed_epochs_are_deduplicated(self, batch_result, tmp_path):
        path = tmp_path / "out.jsonl"
        JsonlSink(path)(self._event(batch_result, 0))
        # A restarted coordinator builds a fresh sink over the same file
        # and replays the epoch it never got to checkpoint.
        resumed = JsonlSink(path)
        assert resumed.last_epoch == 0
        resumed(self._event(batch_result, 0))
        resumed(self._event(batch_result, 1))
        assert [r["epoch"] for r in JsonlSink.read(path)] == [0, 1]

    def test_torn_tail_is_truncated_on_recovery(self, batch_result, tmp_path):
        path = tmp_path / "out.jsonl"
        sink = JsonlSink(path)
        sink(self._event(batch_result, 0))
        whole = path.read_bytes()
        sink(self._event(batch_result, 1))
        torn = path.read_bytes()[: len(whole) + 40]  # killed mid-append
        path.write_bytes(torn)
        resumed = JsonlSink(path)
        assert resumed.last_epoch == 0  # the torn record does not count
        assert path.read_bytes() == whole  # and is gone from the file
        resumed(self._event(batch_result, 1))
        assert [r["epoch"] for r in JsonlSink.read(path)] == [0, 1]


class TestCrashResume:
    """The kill/restart matrix, driven by in-process crash injection.

    Every window asserts the same two facts: the sink holds each epoch
    exactly once with payloads byte-identical to an uninterrupted run,
    and the restarted service's cumulative result is bit-for-bit the
    batch result.
    """

    @pytest.fixture()
    def reference_sink(self, trace, service_config, tmp_path):
        ref_dir = tmp_path / "reference"
        run_service(
            service_config,
            ref_dir,
            trace.sessions,
            subscribers=[JsonlSink(ref_dir / "out.jsonl")],
        )
        return (ref_dir / "out.jsonl").read_bytes()

    def _crash_at(self, config, state_dir, sessions, bomb_position):
        """Drive a service that 'dies' (raises) at a chosen window;
        returns the stream cursor the checkpoint will resume from."""

        class Bomb(RuntimeError):
            pass

        fired = []

        def bomb(event):
            # Fire on the SECOND epoch, so epoch 0's checkpoint exists
            # and the restart is a genuine mid-stream resume.
            if event.epoch == 1 and not fired:
                fired.append(event.epoch)
                raise Bomb()

        sink = JsonlSink(Path(state_dir) / "out.jsonl")
        subscribers = (
            [bomb, sink] if bomb_position == "before_sink" else [sink, bomb]
        )
        service = SimulationService(config, state_dir, subscribers=subscribers)
        with pytest.raises(Bomb):
            for session in sessions:
                service.ingest(session)
        service.close()
        assert fired, "the crash window was never reached"

    def _resume_and_verify(
        self, trace, config, state_dir, batch_result, reference_sink
    ):
        service = SimulationService(
            config, state_dir, subscribers=[JsonlSink(Path(state_dir) / "out.jsonl")]
        )
        try:
            assert service.resumed
            service.run(iter(trace.sessions[service.cursor :]))
            cumulative = service.result()
        finally:
            service.close()
        assert (Path(state_dir) / "out.jsonl").read_bytes() == reference_sink
        assert cumulative.identical_to(batch_result)

    def test_killed_before_any_checkpoint(
        self, trace, service_config, batch_result, tmp_path, reference_sink
    ):
        """SIGKILL before the first epoch ever closes: nothing on disk
        but ingested state that must be re-derived from the stream."""
        state = tmp_path / "state"
        service = SimulationService(service_config, state)
        for session in trace.sessions[:100]:  # dies before epoch 0 closes
            service.ingest(session)
        assert service.emitted == 0
        service.close()  # drop cold: no flush, no checkpoint ever written
        assert not (state / ServiceCheckpoint.FILENAME).exists()
        resumed = SimulationService(
            service_config, state, subscribers=[JsonlSink(state / "out.jsonl")]
        )
        try:
            assert not resumed.resumed and resumed.cursor == 0
            resumed.run(iter(trace.sessions))
            cumulative = resumed.result()
        finally:
            resumed.close()
        assert (state / "out.jsonl").read_bytes() == reference_sink
        assert cumulative.identical_to(batch_result)

    def test_killed_after_close_before_emission(
        self, trace, service_config, batch_result, tmp_path, reference_sink
    ):
        """Died after the epoch simulated but before the sink append:
        the restart re-simulates and the sink sees the epoch once."""
        state = tmp_path / "state"
        self._crash_at(
            service_config, state, trace.sessions, bomb_position="before_sink"
        )
        self._resume_and_verify(
            trace, service_config, state, batch_result, reference_sink
        )

    def test_killed_after_emission_before_checkpoint(
        self, trace, service_config, batch_result, tmp_path, reference_sink
    ):
        """Died between the durable append and the checkpoint write:
        the restart replays the epoch and the sink deduplicates it."""
        state = tmp_path / "state"
        self._crash_at(
            service_config, state, trace.sessions, bomb_position="after_sink"
        )
        assert JsonlSink.read(state / "out.jsonl")  # emitted pre-crash
        self._resume_and_verify(
            trace, service_config, state, batch_result, reference_sink
        )

    def test_killed_after_checkpoint_mid_next_epoch(
        self, trace, service_config, batch_result, tmp_path, reference_sink
    ):
        """Died with one epoch fully committed and the next one half
        ingested: resume re-reads only from the checkpointed cursor."""
        state = tmp_path / "state"
        service = SimulationService(
            service_config, state, subscribers=[JsonlSink(state / "out.jsonl")]
        )
        for session in trace.sessions[:800]:
            service.ingest(session)
        assert service.emitted >= 1
        service.close()  # dies mid-ingestion of the open epoch
        self._resume_and_verify(
            trace, service_config, state, batch_result, reference_sink
        )

    def test_resume_rejects_a_different_config(
        self, trace, service_config, tmp_path
    ):
        state = tmp_path / "state"
        run_service(service_config, state, trace.sessions)
        other = replace(service_config, epoch_seconds=2 * EPOCH)
        with pytest.raises(ValueError, match="different service config"):
            SimulationService(other, state)

    def test_corrupt_checkpoint_is_loud(self, tmp_path):
        (tmp_path / ServiceCheckpoint.FILENAME).write_bytes(b"not a pickle")
        with pytest.raises(RuntimeError, match="corrupt service checkpoint"):
            ServiceCheckpoint.load(tmp_path)


def _spawn_serve(feed, state, src_root, horizon, extra=""):
    """A real coordinator process tailing the feed (for SIGKILL tests)."""
    script = (
        "import sys; sys.path.insert(0, {src!r})\n"
        "from repro.sim.engine import SimulationConfig\n"
        "from repro.sim.service import ServiceConfig, serve_jsonl\n"
        "config = ServiceConfig(simulation=SimulationConfig({extra}),\n"
        "    epoch_seconds={epoch!r}, horizon={horizon!r})\n"
        "serve_jsonl({feed!r}, {state!r}, config, poll_interval=0.02,\n"
        "    sink_path={sink!r})\n"
    ).format(
        src=str(src_root),
        extra=extra,
        epoch=EPOCH,
        horizon=horizon,
        feed=str(feed),
        state=str(state),
        sink=str(Path(state) / "out.jsonl"),
    )
    return subprocess.Popen(
        [sys.executable, "-c", script],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_for_epochs(sink_path, count, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if sink_path.exists() and len(JsonlSink.read(sink_path)) >= count:
            return
        time.sleep(0.05)
    raise AssertionError(f"sink never reached {count} epochs")


class TestSigkillConvergence:
    """Real SIGKILL, real restart, same stream: identical emissions."""

    @pytest.fixture()
    def src_root(self):
        import repro

        return Path(repro.__file__).resolve().parent.parent

    def _run_matrix(self, trace, service_config, tmp_path, src_root, extra=""):
        batch = Simulator(service_config.scoped_config).run(trace)
        # Uninterrupted reference over the finite feed.
        feed = tmp_path / "feed.jsonl"
        save_jsonl(trace, feed)
        append_jsonl_end(feed)
        ref_state = tmp_path / "ref-state"
        reference = serve_jsonl(
            feed,
            ref_state,
            service_config,
            sink_path=ref_state / "out.jsonl",
            poll_interval=0.01,
        )
        ref_bytes = (ref_state / "out.jsonl").read_bytes()
        assert reference.result().identical_to(batch)

        # The victim follows a LIVE feed: only the head is written, so
        # the kill lands with epochs emitted and the stream unfinished.
        live = tmp_path / "live.jsonl"
        head = [s for s in trace.sessions if s.start < 1.5 * EPOCH]
        tail = [s for s in trace.sessions if s.start >= 1.5 * EPOCH]
        save_jsonl(Trace.from_sessions(head, horizon=trace.horizon), live)
        state = tmp_path / "state"
        victim = _spawn_serve(live, state, src_root, trace.horizon, extra=extra)
        try:
            _wait_for_epochs(state / "out.jsonl", 1)
            os.kill(victim.pid, signal.SIGKILL)
        finally:
            victim.wait(timeout=30)
        # The feed keeps growing while nobody is listening...
        with live.open("a", encoding="utf-8") as handle:
            for session in tail:
                handle.write(json.dumps(session_to_record(session)) + "\n")
        append_jsonl_end(live)
        # ...and the restarted coordinator catches up from its checkpoint.
        survivor = _spawn_serve(live, state, src_root, trace.horizon, extra=extra)
        assert survivor.wait(timeout=120) == 0
        assert (state / "out.jsonl").read_bytes() == ref_bytes
        resumed = SimulationService(service_config, state)
        try:
            assert resumed.result().identical_to(batch)
        finally:
            resumed.close()

    def test_serial_backend(self, trace, service_config, tmp_path, src_root):
        self._run_matrix(trace, service_config, tmp_path, src_root)

    def test_distributed_backend(self, trace, tmp_path, src_root):
        queue_dir = tmp_path / "queue"
        config = ServiceConfig(
            simulation=SimulationConfig(
                backend="distributed", workers=2, queue_dir=str(queue_dir)
            ),
            epoch_seconds=EPOCH,
            horizon=trace.horizon,
        )
        extra = (
            f"backend='distributed', workers=2, queue_dir={str(queue_dir)!r}"
        )
        try:
            self._run_matrix(trace, config, tmp_path, src_root, extra=extra)
        finally:
            # Orphan workers spawned by the SIGKILLed coordinator exit
            # on the STOP file instead of polling forever.
            queue_dir.mkdir(exist_ok=True)
            (queue_dir / "STOP").touch()
            time.sleep(0.3)


class TestLateSessions:
    def test_late_sessions_are_counted_and_dropped(self, trace, tmp_path):
        config = ServiceConfig(
            simulation=SimulationConfig(),
            epoch_seconds=EPOCH,
            horizon=trace.horizon,
        )
        sessions = sorted(trace.sessions, key=lambda s: s.start)
        # A day-0 session arriving after the watermark crossed day 2.
        shuffled = sessions[:-1]
        straggler = sessions[0]
        late_feed = shuffled + [straggler]
        events = []
        service, _ = run_service(
            config, tmp_path, late_feed, subscribers=[events.append]
        )
        assert service.late_sessions == 1
        assert sum(e.sessions for e in events) == len(late_feed) - 1

    def test_late_policy_error_raises(self, trace, tmp_path):
        config = ServiceConfig(
            simulation=SimulationConfig(),
            epoch_seconds=EPOCH,
            horizon=trace.horizon,
            late_policy="error",
        )
        sessions = sorted(trace.sessions, key=lambda s: s.start)
        service = SimulationService(config, tmp_path)
        try:
            with pytest.raises(RuntimeError, match="arrived for epoch"):
                for session in sessions + [sessions[0]]:
                    service.ingest(session)
        finally:
            service.close()

    def test_allowed_lateness_holds_the_epoch_open(self, trace, tmp_path):
        config = ServiceConfig(
            simulation=SimulationConfig(),
            epoch_seconds=EPOCH,
            horizon=trace.horizon,
            allowed_lateness=EPOCH,  # a full epoch of slack
        )
        sessions = sorted(trace.sessions, key=lambda s: s.start)
        service = SimulationService(config, tmp_path)
        try:
            for session in sessions:
                service.ingest(session)
            # Watermark is in the last epoch; with a full epoch of
            # lateness the previous epoch must still be open.
            last = int(sessions[-1].start // EPOCH)
            assert last - 1 in service.open_epochs
            service.flush()
            assert service.late_sessions == 0
        finally:
            service.close()


class TestRollingHorizon:
    def test_each_delta_matches_batch_at_its_own_horizon(
        self, trace, tmp_path
    ):
        """horizon=None: unbounded operation; every delta still equals
        the batch result over its epoch at the rolling horizon."""
        config = ServiceConfig(simulation=SimulationConfig(), epoch_seconds=EPOCH)
        events = []
        run_service(config, tmp_path, trace.sessions, subscribers=[events.append])
        assert events
        for event in events:
            sub = [
                s for s in trace.sessions if int(s.start // EPOCH) == event.epoch
            ]
            expected = max(
                (event.epoch + 1) * EPOCH, max(s.end for s in sub)
            )
            assert event.horizon == expected
            reference = Simulator(config.scoped_config).run_stream(
                iter(sub), event.horizon
            )
            assert event.delta.identical_to(reference)


class TestExperimentSettingsIntegration:
    def test_service_config_helper(self):
        from repro.experiments.config import ExperimentSettings

        settings = ExperimentSettings.quick()
        config = settings.service_config(epoch_seconds=2 * EPOCH)
        assert config.epoch_seconds == 2 * EPOCH
        assert config.horizon == settings.days * SECONDS_PER_DAY
        assert config.simulation == settings.simulation_config()
