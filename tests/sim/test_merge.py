"""Mergeable results: associativity and order-independent reduction.

The parallel runtime rests on partial results reducing deterministically:
ByteLedger / UserTraffic / SwarmResult fold pairwise, and
SimulationResult.from_partials gives the same answer no matter what
order swarm-disjoint partials arrive in.
"""

import random

import pytest

from repro.sim import SimulationConfig, simulate
from repro.sim.accounting import ByteLedger
from repro.sim.policies import SwarmKey
from repro.sim.results import SimulationResult, SwarmResult, UserTraffic
from repro.topology.layers import NetworkLayer
from repro.trace.events import Trace
from repro.trace.generator import GeneratorConfig, TraceGenerator


def make_ledger(server, exchange, demanded, sessions=1):
    return ByteLedger(
        server_bits=float(server),
        peer_bits={NetworkLayer.EXCHANGE: float(exchange)},
        demanded_bits=float(demanded),
        watch_seconds=float(sessions) * 10.0,
        sessions=sessions,
    )


class TestByteLedgerMerge:
    def test_associativity_exact(self):
        # Values exactly representable in binary floating point, so the
        # grouping genuinely does not matter bit-for-bit.
        a = make_ledger(1024, 256, 1280)
        b = make_ledger(2048, 512, 2560, sessions=2)
        c = make_ledger(4096, 128, 4224, sessions=3)

        left = ByteLedger.merged([ByteLedger.merged([a, b]), c])
        right = ByteLedger.merged([a, ByteLedger.merged([b, c])])
        assert left.server_bits == right.server_bits
        assert left.peer_bits == right.peer_bits
        assert left.demanded_bits == right.demanded_bits
        assert left.watch_seconds == right.watch_seconds
        assert left.sessions == right.sessions

    def test_copy_is_independent(self):
        a = make_ledger(100, 10, 110)
        clone = a.copy()
        clone.server_bits += 1.0
        clone.peer_bits[NetworkLayer.EXCHANGE] += 5.0
        assert a.server_bits == 100.0
        assert a.peer_bits[NetworkLayer.EXCHANGE] == 10.0

    def test_merge_does_not_touch_source(self):
        a = make_ledger(100, 10, 110)
        b = make_ledger(50, 5, 55)
        a.merge(b)
        assert b.server_bits == 50.0
        assert a.server_bits == 150.0


class TestUserTrafficMerge:
    def test_merge_adds(self):
        a = UserTraffic(watched_bits=100.0, uploaded_bits=25.0)
        a.merge(UserTraffic(watched_bits=50.0, uploaded_bits=5.0))
        assert a.watched_bits == 150.0
        assert a.uploaded_bits == 30.0

    def test_copy_is_independent(self):
        a = UserTraffic(watched_bits=1.0, uploaded_bits=2.0)
        clone = a.copy()
        clone.merge(a)
        assert a.watched_bits == 1.0


class TestSwarmResultCombine:
    def test_session_weighted_mean_duration(self):
        key = SwarmKey(content_id="x")
        a = SwarmResult(
            key=key, ledger=make_ledger(0, 0, 0, sessions=3),
            capacity=1.0, arrival_rate=0.5, mean_duration=100.0,
        )
        b = SwarmResult(
            key=key, ledger=make_ledger(0, 0, 0, sessions=1),
            capacity=2.0, arrival_rate=0.25, mean_duration=300.0,
        )
        merged = SwarmResult.combine(key, [a, b])
        assert merged.capacity == 3.0
        assert merged.arrival_rate == 0.75
        assert merged.mean_duration == pytest.approx(150.0)
        assert merged.ledger.sessions == 4

    def test_combine_leaves_inputs_untouched(self):
        key = SwarmKey(content_id="x")
        a = SwarmResult(
            key=key, ledger=make_ledger(8, 4, 12),
            capacity=1.0, arrival_rate=0.5, mean_duration=10.0,
        )
        SwarmResult.combine(key, [a, a])
        assert a.ledger.server_bits == 8.0


@pytest.fixture(scope="module")
def partials_and_full():
    """Swarm-disjoint partials (split by content) plus the full run."""
    config = GeneratorConfig(
        num_users=250, num_items=18, days=2, expected_sessions=2_000, seed=11
    )
    trace = TraceGenerator(config=config).generate()
    sim_config = SimulationConfig()
    full = simulate(trace, sim_config)

    content_ids = trace.content_ids
    shards = [content_ids[i::3] for i in range(3)]
    partials = []
    for shard in shards:
        wanted = set(shard)
        sessions = [s for s in trace.sessions if s.content_id in wanted]
        sub = Trace.from_sessions(sessions, horizon=trace.horizon)
        partials.append(simulate(sub, sim_config))
    return partials, full


class TestSimulationResultMerge:
    def test_from_partials_order_independent(self, partials_and_full):
        """Any arrival order reduces to the identical result."""
        partials, _ = partials_and_full
        reference = SimulationResult.from_partials(partials)
        rng = random.Random(4)
        for _ in range(4):
            shuffled = list(partials)
            rng.shuffle(shuffled)
            other = SimulationResult.from_partials(shuffled)
            assert other.total.server_bits == reference.total.server_bits
            assert other.total.peer_bits == reference.total.peer_bits
            assert other.per_isp_day.keys() == reference.per_isp_day.keys()
            for key, ledger in reference.per_isp_day.items():
                assert other.per_isp_day[key].server_bits == ledger.server_bits
            assert other.per_user.keys() == reference.per_user.keys()
            for uid, traffic in reference.per_user.items():
                assert other.per_user[uid].uploaded_bits == traffic.uploaded_bits
            assert list(other.per_swarm.keys()) == list(reference.per_swarm.keys())

    def test_from_partials_matches_monolithic_run(self, partials_and_full):
        """Swarm-disjoint shards carry identical physics, so the merged
        totals agree with the single-run totals (up to fold rounding)."""
        partials, full = partials_and_full
        merged = SimulationResult.from_partials(partials)
        assert merged.total.server_bits == pytest.approx(full.total.server_bits)
        assert merged.total.demanded_bits == pytest.approx(full.total.demanded_bits)
        assert merged.total.total_peer_bits == pytest.approx(
            full.total.total_peer_bits
        )
        assert merged.per_swarm.keys() == full.per_swarm.keys()
        assert merged.per_user.keys() == full.per_user.keys()
        assert merged.horizon == full.horizon
        watched = sum(t.watched_bits for t in merged.per_user.values())
        assert watched == pytest.approx(full.total.demanded_bits)

    def test_merge_does_not_mutate_other(self, partials_and_full):
        partials, _ = partials_and_full
        target = SimulationResult.from_partials(partials[:1])
        before = partials[1].total.server_bits
        isp_day_before = {
            k: v.server_bits for k, v in partials[1].per_isp_day.items()
        }
        target.merge(partials[1])
        assert partials[1].total.server_bits == before
        assert {
            k: v.server_bits for k, v in partials[1].per_isp_day.items()
        } == isp_day_before

    def test_merge_rejects_mismatched_parameters(self, partials_and_full):
        partials, _ = partials_and_full
        first = partials[0]
        other = SimulationResult(
            total=ByteLedger(), per_swarm={}, per_isp_day={}, per_user={},
            delta_tau=30.0, horizon=first.horizon, upload_ratio=first.upload_ratio,
        )
        with pytest.raises(ValueError):
            SimulationResult.from_partials([first, other])
        ratio_clash = SimulationResult(
            total=ByteLedger(), per_swarm={}, per_isp_day={}, per_user={},
            delta_tau=first.delta_tau, horizon=first.horizon, upload_ratio=0.5,
        )
        with pytest.raises(ValueError):
            first.merge(ratio_clash)

    def test_from_partials_requires_input(self):
        with pytest.raises(ValueError):
            SimulationResult.from_partials([])

    def test_from_partials_agrees_with_parallel_backend(self, partials_and_full):
        """Both reduction paths (partial results merged after the fact,
        and the backend's per-swarm fold) land on the same physics."""
        partials, full = partials_and_full
        merged = SimulationResult.from_partials(partials)
        assert merged.offload_fraction() == pytest.approx(full.offload_fraction())


class TestReductionRegressions:
    """Regressions caught in review: reductions must not mutate their
    inputs, and partial ordering must not fall back to arrival order."""

    def test_merge_outputs_is_idempotent(self):
        from repro.sim.kernel import build_tasks, merge_outputs, run_shard

        config = SimulationConfig()
        trace = TraceGenerator(
            config=GeneratorConfig(
                num_users=100, num_items=8, days=1, expected_sessions=600, seed=23
            )
        ).generate()
        tasks = build_tasks(trace, trace.horizon, config.policy)
        outputs = run_shard(tasks, config)

        def reduce_once():
            return merge_outputs(
                outputs, delta_tau=config.delta_tau,
                horizon=trace.horizon, upload_ratio=config.upload_ratio,
            )

        first = reduce_once()
        second = reduce_once()
        assert second.total.server_bits == first.total.server_bits
        for key, ledger in first.per_isp_day.items():
            assert second.per_isp_day[key].server_bits == ledger.server_bits
        for uid, traffic in first.per_user.items():
            assert second.per_user[uid].uploaded_bits == traffic.uploaded_bits

    def test_from_partials_deterministic_with_tying_min_keys(self):
        """Time-chunked partials share their most popular swarms, so the
        old min-key ordering tied; the content fingerprint must not."""
        import itertools

        config = GeneratorConfig(
            num_users=120, num_items=6, days=2, expected_sessions=900, seed=29
        )
        trace = TraceGenerator(config=config).generate()
        bounds = [0.0, trace.horizon / 3, 2 * trace.horizon / 3, trace.horizon]
        partials = []
        for lo, hi in zip(bounds, bounds[1:]):
            sessions = [s for s in trace.sessions if lo <= s.start < hi]
            sub = Trace.from_sessions(sessions, horizon=trace.horizon)
            partials.append(simulate(sub))
        # Every chunk contains the popular items -> min swarm keys tie.
        assert len({min(k.sort_key() for k in p.per_swarm) for p in partials}) == 1

        fingerprints = set()
        for permutation in itertools.permutations(partials):
            merged = SimulationResult.from_partials(list(permutation))
            fingerprints.add(
                (
                    merged.total.server_bits,
                    tuple(sorted(
                        (k.sort_key(), r.ledger.server_bits, r.capacity)
                        for k, r in merged.per_swarm.items()
                    )),
                    tuple(sorted(
                        (uid, t.watched_bits, t.uploaded_bits)
                        for uid, t in merged.per_user.items()
                    )),
                )
            )
        assert len(fingerprints) == 1


class TestHorizonValidation:
    def test_merge_rejects_mismatched_horizon(self, partials_and_full):
        partials, _ = partials_and_full
        first = partials[0]
        clash = SimulationResult(
            total=ByteLedger(), per_swarm={}, per_isp_day={}, per_user={},
            delta_tau=first.delta_tau, horizon=first.horizon * 2,
            upload_ratio=first.upload_ratio,
        )
        with pytest.raises(ValueError, match="horizon"):
            SimulationResult.from_partials([first, clash])

    def test_zero_horizon_accumulator_accepts_any(self, partials_and_full):
        partials, _ = partials_and_full
        merged = SimulationResult.from_partials(partials[:1])
        assert merged.horizon == partials[0].horizon
