"""Federation: reducer-level reconciliation of per-region jobs.

The headline contract (:mod:`repro.sim.federate`): a federated K-city
run over **disjoint** topologies is bit-for-bit equal to the single
run over the union trace -- because every region's swarm outputs fold
into one global reducer at the union run's canonical task indices, not
by merging finished results.  Also covered: per-region results match
standalone runs, the contract holds across backends and groupings,
cross-region swarms land in the federation ledger under the home-region
rules, and job validation rejects what it should.
"""

import itertools
from contextlib import ExitStack

import pytest

from repro.sim.engine import SimulationConfig, Simulator
from repro.sim.federate import (
    FederationLedger,
    RegionJob,
    declared_home_rule,
    default_home_rule,
    run_federation,
)
from repro.sim.policies import SwarmPolicy
from repro.trace.store import StoreReader
from repro.trace.synth import SynthConfig, synthesize


def make_regions(tmp_path, *, prefix=None, cities=3):
    """Synthesize small per-region stores; returns (configs, paths)."""
    configs = [
        SynthConfig(
            region=f"city{i}",
            seed=20 + i,
            days=2,
            users=30 + 5 * i,
            catalogue_size=10,
            sessions_per_user_day=1.5,
            num_isps=2,
            num_exchanges=4,
            num_pops=2,
            catalogue_prefix=prefix,
        )
        for i in range(cities)
    ]
    paths = [
        synthesize(config, tmp_path / f"{config.region}.store").path
        for config in configs
    ]
    return configs, paths


def union_result(paths, horizon, config=None):
    simulator = Simulator(config or SimulationConfig())
    try:
        with ExitStack() as stack:
            readers = [stack.enter_context(StoreReader(p)) for p in paths]
            return simulator.run_stream(
                itertools.chain.from_iterable(
                    r.iter_sessions() for r in readers
                ),
                horizon,
            )
    finally:
        simulator.close()


def test_disjoint_federation_equals_union_run(tmp_path):
    configs, paths = make_regions(tmp_path)
    horizon = max(c.horizon for c in configs)
    union = union_result(paths, horizon)
    fed = run_federation(
        [RegionJob(name=c.region, store=p) for c, p in zip(configs, paths)]
    )
    assert fed.horizon == horizon
    assert fed.merged.identical_to(union)
    assert fed.ledger.cross_region_swarms == 0
    assert fed.ledger.inter_region_bits == 0.0
    assert not fed.ledger.flows


def test_per_region_results_match_standalone_runs(tmp_path):
    configs, paths = make_regions(tmp_path)
    horizon = max(c.horizon for c in configs)
    fed = run_federation(
        [RegionJob(name=c.region, store=p) for c, p in zip(configs, paths)]
    )
    for config, path in zip(configs, paths):
        simulator = Simulator(SimulationConfig())
        with StoreReader(path) as reader:
            standalone = simulator.run_stream(reader.iter_sessions(), horizon)
        assert fed.per_region[config.region].identical_to(standalone)
        assert fed.region_tasks[config.region] > 0


@pytest.mark.parametrize(
    "sim_config",
    [
        SimulationConfig(workers=2, backend="thread"),
        SimulationConfig(workers=2, backend="process"),
        SimulationConfig(grouping="external"),
        SimulationConfig(
            workers=2, backend="distributed", reduction="streaming"
        ),
    ],
    ids=["thread", "process", "external-grouping", "distributed"],
)
def test_parity_across_backends_and_groupings(tmp_path, sim_config):
    configs, paths = make_regions(tmp_path, cities=2)
    horizon = max(c.horizon for c in configs)
    union = union_result(paths, horizon)
    fed = run_federation(
        [RegionJob(name=c.region, store=p) for c, p in zip(configs, paths)],
        sim_config,
    )
    assert fed.merged.identical_to(union)


def test_shard_cache_token_reused(tmp_path):
    configs, paths = make_regions(tmp_path, cities=2)
    sim_config = SimulationConfig(
        grouping="external", shard_dir=str(tmp_path / "shards")
    )
    jobs = [
        RegionJob(name=c.region, store=p, cache_token=c.cache_token)
        for c, p in zip(configs, paths)
    ]
    first = run_federation(jobs, sim_config)
    second = run_federation(jobs, sim_config)  # same tokens: cache hits
    assert second.merged.identical_to(first.merged)
    cache_dirs = list((tmp_path / "shards").glob("cache-*"))
    assert len(cache_dirs) == 2  # one entry per region, reused not rebuilt


def test_explicit_horizon_and_validation(tmp_path):
    configs, paths = make_regions(tmp_path, cities=2)
    jobs = [
        RegionJob(name=c.region, store=p) for c, p in zip(configs, paths)
    ]
    wider = run_federation(jobs, horizon=3 * configs[0].horizon)
    assert wider.horizon == 3 * configs[0].horizon
    with pytest.raises(ValueError, match="unique"):
        run_federation([jobs[0], jobs[0]])
    with pytest.raises(ValueError):
        run_federation([])
    with pytest.raises(ValueError, match="queue_dir"):
        run_federation(
            [
                RegionJob(
                    name="solo",
                    store=paths[0],
                    queue_dir=str(tmp_path / "q"),
                )
            ],
            SimulationConfig(),  # backend is not "distributed"
        )
    with pytest.raises(ValueError, match="region name"):
        RegionJob(name="bad/name", store=paths[0])


def test_cross_region_ledger_with_shared_catalogue(tmp_path):
    configs, paths = make_regions(tmp_path, prefix="global", cities=2)
    config = SimulationConfig(policy=SwarmPolicy(split_by_isp=False))
    fed = run_federation(
        [RegionJob(name=c.region, store=p) for c, p in zip(configs, paths)],
        config,
    )
    ledger = fed.ledger
    assert ledger.cross_region_swarms > 0
    assert sum(ledger.home_swarms.values()) == ledger.cross_region_swarms
    assert ledger.inter_region_bits > 0
    for (source, home), flow in ledger.flows.items():
        assert source != home
        assert flow.demanded_bits > 0
    summary = ledger.summary()
    assert summary["cross_region_swarms"] == ledger.cross_region_swarms
    assert len(summary["flows"]) == len(ledger.flows)
    # Merged totals still conserve sessions: every session belongs to
    # exactly one region's store.
    assert fed.merged.total.sessions == sum(
        r.total.sessions for r in fed.per_region.values()
    )


def test_declared_home_rule_overrides_default(tmp_path):
    configs, paths = make_regions(tmp_path, prefix="global", cities=2)
    config = SimulationConfig(policy=SwarmPolicy(split_by_isp=False))
    jobs = [
        RegionJob(name=c.region, store=p) for c, p in zip(configs, paths)
    ]
    declared = run_federation(
        jobs, config, home_rule=declared_home_rule({"global": "city1"})
    )
    assert set(declared.ledger.home_swarms) == {"city1"}
    # Declaring a region that contributed nothing must fail loudly.
    with pytest.raises(ValueError, match="not among its contributing"):
        run_federation(
            jobs, config, home_rule=lambda key, contributions: "elsewhere"
        )


def test_default_home_rule_prefers_content_prefix():
    from repro.sim.accounting import ByteLedger
    from repro.sim.policies import SwarmKey
    from repro.sim.results import SwarmResult

    def swarm_result(demanded):
        return SwarmResult(
            key=SwarmKey(content_id="unused"),
            ledger=ByteLedger(demanded_bits=demanded),
            capacity=0.0,
            arrival_rate=0.0,
            mean_duration=0.0,
        )

    key = SwarmKey(content_id="east/c0001.g0")
    contributions = {
        "east": swarm_result(1.0),
        "west": swarm_result(100.0),
    }
    assert default_home_rule(key, contributions) == "east"  # origin wins
    neutral = SwarmKey(content_id="shared/c0001.g0")
    assert default_home_rule(neutral, contributions) == "west"  # demand
    tied = {"east": swarm_result(5.0), "west": swarm_result(5.0)}
    assert default_home_rule(neutral, tied) == "west"  # name breaks ties


def test_ledger_summary_empty():
    ledger = FederationLedger()
    assert ledger.inter_region_bits == 0.0
    assert ledger.summary() == {
        "cross_region_swarms": 0,
        "inter_region_bits": 0.0,
        "home_swarms": {},
        "flows": [],
    }
