"""Tests for byte ledgers and energy accounting."""

import pytest

from repro.core.energy import BALIGA, VALANCIUS
from repro.sim.accounting import (
    ByteLedger,
    baseline_energy_nj,
    hybrid_energy_nj,
    savings,
)
from repro.topology.layers import NetworkLayer


def ledger_with(server=0.0, exchange=0.0, pop=0.0, core=0.0, transit=0.0):
    ledger = ByteLedger()
    ledger.add_server_bits(server)
    for layer, bits in [
        (NetworkLayer.EXCHANGE, exchange),
        (NetworkLayer.POP, pop),
        (NetworkLayer.CORE, core),
        (NetworkLayer.SERVER, transit),
    ]:
        if bits:
            ledger.add_peer_bits(layer, bits)
    ledger.demanded_bits = server + exchange + pop + core + transit
    return ledger


class TestByteLedger:
    def test_empty(self):
        ledger = ByteLedger()
        assert ledger.total_peer_bits == 0.0
        assert ledger.offload_fraction == 0.0

    def test_offload_fraction(self):
        ledger = ledger_with(server=300.0, exchange=700.0)
        assert ledger.offload_fraction == pytest.approx(0.7)

    def test_add_validation(self):
        ledger = ByteLedger()
        with pytest.raises(ValueError):
            ledger.add_server_bits(-1.0)
        with pytest.raises(ValueError):
            ledger.add_peer_bits(NetworkLayer.POP, -1.0)

    def test_merge(self):
        a = ledger_with(server=100.0, pop=50.0)
        a.watch_seconds = 10.0
        a.sessions = 2
        b = ledger_with(server=20.0, pop=30.0, core=5.0)
        b.watch_seconds = 4.0
        b.sessions = 1
        a.merge(b)
        assert a.server_bits == 120.0
        assert a.peer_bits[NetworkLayer.POP] == 80.0
        assert a.peer_bits[NetworkLayer.CORE] == 5.0
        assert a.watch_seconds == 14.0
        assert a.sessions == 3
        assert a.demanded_bits == pytest.approx(205.0)

    def test_merged_classmethod(self):
        parts = [ledger_with(server=10.0), ledger_with(exchange=5.0)]
        total = ByteLedger.merged(parts)
        assert total.server_bits == 10.0
        assert total.total_peer_bits == 5.0
        # inputs untouched
        assert parts[0].total_peer_bits == 0.0


class TestEnergy:
    def test_server_only_matches_model(self):
        ledger = ledger_with(server=1e6)
        assert hybrid_energy_nj(ledger, VALANCIUS) == pytest.approx(
            VALANCIUS.server_energy_nj(1e6)
        )

    def test_peer_layers_priced_individually(self):
        ledger = ledger_with(exchange=1e6, core=2e6)
        expected = VALANCIUS.peer_energy_nj(1e6, NetworkLayer.EXCHANGE) + VALANCIUS.peer_energy_nj(
            2e6, NetworkLayer.CORE
        )
        assert hybrid_energy_nj(ledger, VALANCIUS) == pytest.approx(expected)

    def test_transit_peer_bits_priced_at_cdn_network(self):
        ledger = ledger_with(transit=1e6)
        expected = 1e6 * (VALANCIUS.psi_peer_modem + VALANCIUS.pue * VALANCIUS.gamma_cdn_network)
        assert hybrid_energy_nj(ledger, VALANCIUS) == pytest.approx(expected)

    def test_baseline_prices_all_demand_at_server(self):
        ledger = ledger_with(server=1e6, exchange=3e6)
        assert baseline_energy_nj(ledger, BALIGA) == pytest.approx(
            BALIGA.server_energy_nj(4e6)
        )


class TestSavings:
    def test_no_peering_no_savings(self):
        ledger = ledger_with(server=1e6)
        assert savings(ledger, VALANCIUS) == pytest.approx(0.0)

    def test_empty_ledger(self):
        assert savings(ByteLedger(), VALANCIUS) == 0.0

    def test_full_exchange_offload(self):
        """All-but-seed served at the exchange: S nears the asymptote."""
        ledger = ledger_with(server=1e4, exchange=99e4)
        s = savings(ledger, VALANCIUS)
        asymptote = 1 - (VALANCIUS.psi_peer(VALANCIUS.gamma_exchange)) / VALANCIUS.psi_server
        assert s == pytest.approx(0.99 * asymptote, rel=0.02)

    def test_transit_peering_barely_saves(self):
        """Cross-ISP 'peering' replaces the server with a second modem:
        marginally cheaper energy-wise (the paper's objection to it is
        ISP transit cost, not energy), but far worse than any same-ISP
        layer."""
        transit = savings(ledger_with(transit=1e6), VALANCIUS)
        core = savings(ledger_with(core=1e6), VALANCIUS)
        assert 0.0 < transit < core
        expected = 1 - (
            VALANCIUS.psi_peer_modem + VALANCIUS.pue * VALANCIUS.gamma_cdn_network
        ) / VALANCIUS.psi_server
        assert transit == pytest.approx(expected)

    def test_savings_ordering_by_layer(self):
        by_layer = {}
        for name, kwargs in [
            ("exchange", {"exchange": 9e5}),
            ("pop", {"pop": 9e5}),
            ("core", {"core": 9e5}),
        ]:
            ledger = ledger_with(server=1e5, **kwargs)
            by_layer[name] = savings(ledger, BALIGA)
        assert by_layer["exchange"] > by_layer["pop"] > by_layer["core"]
