"""Property test: grouping strategy x input permutation never changes results.

The out-of-core refactor's core claim, stated as a law and handed to
`hypothesis`: for *any* session multiset and *any* input order, the
memory and external grouping strategies produce bit-for-bit identical
simulation results.  Sessions are drawn with adversarial structure --
shared swarm keys, shared users, ties in start times -- precisely the
cases where a sort/merge bug would reorder the fold.  ``hypothesis``
is an optional dependency: the module skips when it is missing.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sim import SimulationConfig, Simulator
from repro.sim.grouping import ExternalGrouping, MemoryGrouping
from repro.topology.nodes import intern_attachment
from repro.trace.events import SECONDS_PER_DAY, Session

LAW = settings(
    max_examples=60,  # each example runs four full simulations
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

HORIZON = 2 * SECONDS_PER_DAY

#: A deliberately tiny value space so examples collide on swarm keys,
#: users and attachment points -- grouping has real work to do.
_attachments = st.sampled_from(
    [
        intern_attachment("ISP-1", 0, 0),
        intern_attachment("ISP-1", 0, 1),
        intern_attachment("ISP-2", 1, 5),
    ]
)

_session_bodies = st.tuples(
    st.integers(min_value=0, max_value=9),  # user_id
    st.sampled_from(["item-a", "item-b", "item-c"]),  # content_id
    st.integers(min_value=0, max_value=int(HORIZON) - 600),  # start (s)
    st.integers(min_value=60, max_value=600),  # duration (s)
    st.sampled_from([800_000.0, 1_500_000.0]),  # bitrate
    _attachments,
)


@st.composite
def session_lists(draw):
    bodies = draw(st.lists(_session_bodies, min_size=1, max_size=24))
    sessions = [
        Session(
            session_id=index,
            user_id=user_id,
            content_id=content_id,
            start=float(start),
            duration=float(duration),
            bitrate=bitrate,
            attachment=attachment,
        )
        for index, (user_id, content_id, start, duration, bitrate, attachment)
        in enumerate(bodies)
    ]
    permutation = draw(st.permutations(sessions))
    return sessions, permutation


def _run(sessions, grouping, tmp_dir):
    simulator = Simulator(
        SimulationConfig(),
        grouping=(
            ExternalGrouping(shard_dir=tmp_dir, run_sessions=7)
            if grouping == "external"
            else MemoryGrouping()
        ),
    )
    return simulator.run_stream(iter(sessions), HORIZON)


class TestGroupingLaws:
    @LAW
    @given(data=session_lists())
    def test_strategy_and_permutation_invariance(self, data, tmp_path_factory):
        sessions, permutation = data
        tmp_dir = tmp_path_factory.mktemp("shards")
        reference = _run(sessions, "memory", tmp_dir)
        # Memory grouping on the permuted stream.
        assert reference.identical_to(_run(permutation, "memory", tmp_dir))
        # External grouping on both orders (run_sessions=7 forces real
        # spill-and-merge on most examples).
        assert reference.identical_to(_run(sessions, "external", tmp_dir))
        assert reference.identical_to(_run(permutation, "external", tmp_dir))
