"""Tests for the windowed simulation engine."""

import math

import pytest

from repro.core import SavingsModel, VALANCIUS
from repro.sim import SimulationConfig, Simulator, simulate
from repro.sim.policies import SwarmPolicy
from repro.topology.nodes import AttachmentPoint
from repro.trace.diurnal import FLAT_PROFILE
from repro.trace.events import SECONDS_PER_DAY, Session, Trace
from repro.trace.generator import GeneratorConfig, TraceGenerator


def make_session(
    session_id,
    user_id,
    start,
    duration,
    *,
    content_id="item-a",
    bitrate=1.5e6,
    isp="ISP-1",
    pop=0,
    exchange=0,
):
    return Session(
        session_id=session_id,
        user_id=user_id,
        content_id=content_id,
        start=start,
        duration=duration,
        bitrate=bitrate,
        attachment=AttachmentPoint(isp=isp, pop=pop, exchange=exchange),
    )


class TestConfigValidation:
    def test_delta_tau_must_divide_day(self):
        with pytest.raises(ValueError):
            SimulationConfig(delta_tau=7.0)
        SimulationConfig(delta_tau=30.0)  # fine

    def test_nonpositive_delta_tau(self):
        with pytest.raises(ValueError):
            SimulationConfig(delta_tau=0.0)

    def test_negative_ratio(self):
        with pytest.raises(ValueError):
            SimulationConfig(upload_ratio=-0.1)

    def test_upload_rate_for(self):
        assert SimulationConfig(upload_ratio=0.5).upload_rate_for(2e6) == 1e6
        fixed = SimulationConfig(upload_bandwidth=4e6)
        assert fixed.upload_rate_for(1e6) == 4e6


class TestSingleViewer:
    def test_lone_session_all_from_server(self):
        trace = Trace.from_sessions([make_session(0, 1, start=0.0, duration=600.0)])
        result = simulate(trace)
        assert result.total.total_peer_bits == 0.0
        # 60 windows x 1.5 Mbps x 10 s.
        assert result.total.server_bits == pytest.approx(60 * 1.5e6 * 10)
        assert result.savings(VALANCIUS) == pytest.approx(0.0)

    def test_quantisation_covers_partial_windows(self):
        trace = Trace.from_sessions([make_session(0, 1, start=5.0, duration=12.0)])
        result = simulate(trace)
        # Start window 0, end ceil(17/10) = 2 -> 2 windows.
        assert result.total.server_bits == pytest.approx(2 * 1.5e6 * 10)


class TestTwoViewers:
    def test_disjoint_sessions_never_share(self):
        trace = Trace.from_sessions(
            [
                make_session(0, 1, start=0.0, duration=600.0),
                make_session(1, 2, start=1200.0, duration=600.0),
            ]
        )
        result = simulate(trace)
        assert result.total.total_peer_bits == 0.0

    def test_concurrent_sessions_share(self):
        trace = Trace.from_sessions(
            [
                make_session(0, 1, start=0.0, duration=600.0, exchange=0),
                make_session(1, 2, start=0.0, duration=600.0, exchange=1),
            ]
        )
        result = simulate(trace)
        # Seed serves the second viewer fully (q = beta): 50 % offload.
        assert result.total.offload_fraction == pytest.approx(0.5)

    def test_partial_overlap_shares_only_joint_windows(self):
        trace = Trace.from_sessions(
            [
                make_session(0, 1, start=0.0, duration=600.0),
                make_session(1, 2, start=300.0, duration=600.0, exchange=1),
            ]
        )
        result = simulate(trace)
        # 30 joint windows out of 120 window-streams total.
        expected_peer = 30 * 1.5e6 * 10
        assert result.total.total_peer_bits == pytest.approx(expected_peer)

    def test_different_items_never_share(self):
        trace = Trace.from_sessions(
            [
                make_session(0, 1, start=0.0, duration=600.0, content_id="a"),
                make_session(1, 2, start=0.0, duration=600.0, content_id="b", exchange=1),
            ]
        )
        assert simulate(trace).total.total_peer_bits == 0.0

    def test_different_bitrates_split_by_default(self):
        trace = Trace.from_sessions(
            [
                make_session(0, 1, start=0.0, duration=600.0, bitrate=1.5e6),
                make_session(1, 2, start=0.0, duration=600.0, bitrate=3.0e6, exchange=1),
            ]
        )
        assert simulate(trace).total.total_peer_bits == 0.0

    def test_bitrate_merge_when_policy_allows(self):
        trace = Trace.from_sessions(
            [
                make_session(0, 1, start=0.0, duration=600.0, bitrate=1.5e6),
                make_session(1, 2, start=0.0, duration=600.0, bitrate=3.0e6, exchange=1),
            ]
        )
        config = SimulationConfig(policy=SwarmPolicy(split_by_bitrate=False))
        assert simulate(trace, config).total.total_peer_bits > 0.0

    def test_cross_isp_split_by_default(self):
        trace = Trace.from_sessions(
            [
                make_session(0, 1, start=0.0, duration=600.0, isp="ISP-1"),
                make_session(1, 2, start=0.0, duration=600.0, isp="ISP-2"),
            ]
        )
        assert simulate(trace).total.total_peer_bits == 0.0

    def test_upload_ratio_limits_sharing(self):
        trace = Trace.from_sessions(
            [
                make_session(0, 1, start=0.0, duration=600.0),
                make_session(1, 2, start=0.0, duration=600.0, exchange=1),
            ]
        )
        result = simulate(trace, SimulationConfig(upload_ratio=0.4))
        assert result.total.offload_fraction == pytest.approx(0.2)  # 0.4 * 0.5


class TestAccountingLevels:
    def test_per_user_traffic(self):
        trace = Trace.from_sessions(
            [
                make_session(0, 1, start=0.0, duration=600.0, exchange=0),
                make_session(1, 2, start=0.0, duration=600.0, exchange=0),
            ]
        )
        result = simulate(trace)
        watched = 60 * 1.5e6 * 10
        assert result.per_user[1].watched_bits == pytest.approx(watched)
        assert result.per_user[2].watched_bits == pytest.approx(watched)
        # User 1 is the seed and uploads the other stream.
        assert result.per_user[1].uploaded_bits == pytest.approx(watched)
        assert result.per_user[2].uploaded_bits == 0.0

    def test_per_isp_day_split(self):
        trace = Trace.from_sessions(
            [
                make_session(0, 1, start=0.0, duration=600.0),
                make_session(1, 2, start=SECONDS_PER_DAY + 100.0, duration=600.0),
            ],
            horizon=2 * SECONDS_PER_DAY,
        )
        result = simulate(trace)
        assert ("ISP-1", 0) in result.per_isp_day
        assert ("ISP-1", 1) in result.per_isp_day
        assert result.days() == [0, 1]

    def test_stretch_split_at_day_boundary(self):
        """A session spanning midnight lands bits on both days."""
        trace = Trace.from_sessions(
            [make_session(0, 1, start=SECONDS_PER_DAY - 300.0, duration=600.0)],
            horizon=2 * SECONDS_PER_DAY,
        )
        result = simulate(trace)
        day0 = result.per_isp_day[("ISP-1", 0)]
        day1 = result.per_isp_day[("ISP-1", 1)]
        assert day0.server_bits == pytest.approx(30 * 1.5e6 * 10)
        assert day1.server_bits == pytest.approx(30 * 1.5e6 * 10)

    def test_swarm_capacity_measured(self):
        # Two 0.5-day sessions over a 1-day horizon = 1 concurrent viewer.
        trace = Trace.from_sessions(
            [
                make_session(0, 1, start=0.0, duration=SECONDS_PER_DAY / 2),
                make_session(1, 2, start=SECONDS_PER_DAY / 2, duration=SECONDS_PER_DAY / 2 - 10, exchange=1),
            ],
            horizon=SECONDS_PER_DAY,
        )
        result = simulate(trace)
        swarm = next(iter(result.per_swarm.values()))
        assert swarm.capacity == pytest.approx(1.0, abs=0.01)
        assert swarm.arrival_rate == pytest.approx(2 / SECONDS_PER_DAY)
        assert swarm.mean_duration == pytest.approx(SECONDS_PER_DAY / 2, rel=0.01)


class TestConservationInvariants:
    @pytest.fixture(scope="class")
    def result(self):
        config = GeneratorConfig(
            num_users=1_200, num_items=120, days=3, expected_sessions=8_000, seed=21
        )
        trace = TraceGenerator(config=config).generate()
        return simulate(trace)

    def test_demand_split_between_server_and_peers(self, result):
        total = result.total
        assert total.server_bits + total.total_peer_bits == pytest.approx(
            total.demanded_bits
        )

    def test_per_user_watched_sums_to_demand(self, result):
        watched = sum(u.watched_bits for u in result.per_user.values())
        assert watched == pytest.approx(result.total.demanded_bits)

    def test_per_user_uploads_sum_to_peer_bits(self, result):
        uploaded = sum(u.uploaded_bits for u in result.per_user.values())
        assert uploaded == pytest.approx(result.total.total_peer_bits)

    def test_per_swarm_ledgers_sum_to_total(self, result):
        server = sum(r.ledger.server_bits for r in result.per_swarm.values())
        peer = sum(r.ledger.total_peer_bits for r in result.per_swarm.values())
        assert server == pytest.approx(result.total.server_bits)
        assert peer == pytest.approx(result.total.total_peer_bits)

    def test_per_isp_day_ledgers_sum_to_total(self, result):
        merged = sum(l.demanded_bits for l in result.per_isp_day.values())
        assert merged == pytest.approx(result.total.demanded_bits)

    def test_savings_within_bounds(self, result):
        s = result.savings(VALANCIUS)
        assert -1.0 < s < 1.0
        assert result.offload_fraction() <= 1.0


class TestTheoryAgreement:
    """The paper's Fig. 2 claim: simulation matches Eq. 12."""

    @pytest.fixture(scope="class")
    def flat_item_result(self):
        config = GeneratorConfig(
            num_users=2_500,
            num_items=1,
            days=4,
            expected_sessions=0,
            pinned_views={"hit": 6_000.0},
            seed=13,
        )
        trace = TraceGenerator(config=config, profile=FLAT_PROFILE).generate()
        return simulate(trace)

    def test_offload_matches_eq3(self, flat_item_result):
        # Sub-swarms below c ~ 2 carry too few sessions for tight
        # agreement (Poisson noise ~ 1/sqrt(sessions)); the paper's
        # Fig. 2 dots scatter the same way.
        model = SavingsModel(VALANCIUS)
        checked = 0
        for swarm in flat_item_result.per_swarm.values():
            if swarm.capacity < 2.0:
                continue
            expected = model.offload_fraction(swarm.capacity)
            assert swarm.ledger.offload_fraction == pytest.approx(expected, rel=0.05)
            checked += 1
        assert checked >= 3

    def test_savings_match_eq12(self, flat_item_result):
        model = SavingsModel(VALANCIUS)
        checked = 0
        for swarm in flat_item_result.per_swarm.values():
            if swarm.capacity < 2.0:
                continue
            expected = model.savings(swarm.capacity)
            assert swarm.savings(VALANCIUS) == pytest.approx(expected, rel=0.15)
            checked += 1
        assert checked >= 3

    def test_littles_law_capacity(self, flat_item_result):
        for swarm in flat_item_result.per_swarm.values():
            if swarm.ledger.sessions < 100:
                continue
            littles = swarm.arrival_rate * swarm.mean_duration
            assert swarm.capacity == pytest.approx(littles, rel=0.05)


class TestDeltaTauSensitivity:
    def test_windows_consistent_across_delta_tau(self):
        config = GeneratorConfig(
            num_users=400, num_items=40, days=2, expected_sessions=2_500, seed=31
        )
        trace = TraceGenerator(config=config).generate()
        results = {
            dt: simulate(trace, SimulationConfig(delta_tau=dt)) for dt in (2.0, 10.0, 60.0)
        }
        savings = {dt: r.savings(VALANCIUS) for dt, r in results.items()}
        # Quantisation nudges totals slightly; savings must be stable.
        assert savings[2.0] == pytest.approx(savings[10.0], abs=0.01)
        assert savings[10.0] == pytest.approx(savings[60.0], abs=0.02)
