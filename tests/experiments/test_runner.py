"""Tests for the experiment runner and report structure."""

import pytest

from repro.experiments.report import Report
from repro.experiments.runner import EXPERIMENTS, run_all, run_experiment
from repro.experiments.config import ExperimentSettings


class TestReport:
    def test_sections_ordered(self):
        report = Report(name="x", title="T")
        report.add("first", "body one")
        report.add("second", "body two")
        text = report.render()
        assert text.index("first") < text.index("second")
        assert "## x: T" in text

    def test_empty_report_renders_header(self):
        assert Report(name="n", title="t").render() == "## n: t"


class TestRunAll:
    def test_writes_one_file_per_experiment(self, tmp_path):
        settings = ExperimentSettings.quick()
        reports = run_all(settings, out_dir=tmp_path)
        assert len(reports) == len(EXPERIMENTS)
        for name in EXPERIMENTS:
            path = tmp_path / f"{name}.txt"
            assert path.exists()
            assert path.read_text().startswith(f"## {name}:")

    def test_run_all_without_out_dir(self):
        reports = run_all(ExperimentSettings.quick())
        assert {r.name for r in reports} == set(EXPERIMENTS)

    def test_reduction_override_threads_through(self):
        from repro.experiments.runner import _resolve_settings

        settings = _resolve_settings(ExperimentSettings.quick(), None, "streaming")
        assert settings.reduction == "streaming"
        assert settings.simulation_config().reduction == "streaming"

    def test_reduction_mode_shares_memoised_artefacts(self):
        """Reduction modes are bit-for-bit identical, so they share the
        cached simulation exactly like worker counts do."""
        from dataclasses import replace

        from repro.experiments.config import paper_simulation

        settings = ExperimentSettings.quick()
        baseline = paper_simulation(settings)
        streamed = paper_simulation(replace(settings, reduction="streaming"))
        assert streamed is baseline  # same memo entry, not just equal

    def test_settings_reject_unknown_reduction(self):
        with pytest.raises(ValueError):
            ExperimentSettings(reduction="mapreduce")

    def test_reports_reuse_cached_simulation(self):
        """fig3/fig4/fig6 share one city simulation: repeat runs are
        effectively instant (cache keyed by settings)."""
        import time

        settings = ExperimentSettings.quick()
        run_experiment("fig3", settings)  # warm
        start = time.perf_counter()
        run_experiment("fig3", settings)
        assert time.perf_counter() - start < 2.0


class TestBackendOverride:
    def test_backend_and_queue_dir_thread_through(self, tmp_path):
        from repro.experiments.runner import _resolve_settings

        settings = _resolve_settings(
            ExperimentSettings.quick(),
            workers=2,
            backend="distributed",
            queue_dir=str(tmp_path / "q"),
        )
        assert settings.backend == "distributed"
        assert settings.queue_dir == str(tmp_path / "q")
        config = settings.simulation_config()
        assert config.backend == "distributed"
        assert config.queue_dir == str(tmp_path / "q")
        assert config.workers == 2

    def test_settings_reject_queue_dir_without_distributed(self, tmp_path):
        with pytest.raises(ValueError):
            ExperimentSettings(queue_dir=str(tmp_path))
        with pytest.raises(ValueError):
            ExperimentSettings(backend="process", queue_dir=str(tmp_path))
        with pytest.raises(ValueError):
            ExperimentSettings(backend="warp-drive")

    def test_backend_excluded_from_memo_key(self, tmp_path):
        from repro.experiments.config import memo_key

        plain = memo_key("city", ExperimentSettings.quick())
        distributed = memo_key(
            "city",
            ExperimentSettings(
                scale=0.05,
                days=7,
                backend="distributed",
                queue_dir=str(tmp_path),
            ),
        )
        assert plain == distributed  # runtime knobs never split the cache
