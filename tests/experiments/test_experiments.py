"""Integration tests for the experiment drivers (quick scale).

These run every table/figure driver end to end on a small trace and
assert the qualitative properties the paper reports.  The full-scale
numbers live in the benchmarks and EXPERIMENTS.md.
"""

import math

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentSettings,
    run_experiment,
)
from repro.experiments.config import TIER_VIEWS


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings.quick()


class TestSettings:
    def test_quick_is_smaller(self):
        quick = ExperimentSettings.quick()
        full = ExperimentSettings()
        assert quick.city_config().expected_sessions < full.city_config().expected_sessions
        assert quick.days < full.days

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            ExperimentSettings(scale=0.0)

    def test_exemplar_pins_three_tiers(self, settings):
        config = settings.exemplar_config()
        assert set(config.pinned_views) == set(TIER_VIEWS)
        ratios = sorted(config.pinned_views.values(), reverse=True)
        assert ratios[0] / ratios[1] == pytest.approx(10.0)
        assert ratios[1] / ratios[2] == pytest.approx(10.0)

    def test_unknown_experiment_rejected(self, settings):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("fig99", settings)

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table1", "table3", "table4", "fig2", "fig3", "fig4", "fig5", "fig6",
        }


class TestTable1(object):
    @pytest.fixture(scope="class")
    def report(self, settings):
        return run_experiment("table1", settings)

    def test_two_months(self, report):
        assert set(report.data["stats"]) == {"Sep 2013", "Jul 2014"}

    def test_second_month_busier(self, report):
        stats = report.data["stats"]
        assert stats["Jul 2014"]["users"] > stats["Sep 2013"]["users"]

    def test_nat_ratio(self, report):
        stats = report.data["stats"]["Sep 2013"]
        assert stats["ips"] == pytest.approx(stats["users"] / 2.2, rel=0.01)

    def test_renders(self, report):
        text = report.render()
        assert "Number of Users" in text
        assert "Number of Sessions" in text


class TestTable3:
    def test_paper_values(self, settings):
        report = run_experiment("table3", settings)
        rows = {row["layer"]: row for row in report.data["rows"]}
        assert rows["Exchange Point"]["count"] == 345
        assert rows["Exchange Point"]["probability"] == pytest.approx(0.0029, abs=1e-4)
        assert rows["Point of Presence"]["count"] == 9
        assert rows["Point of Presence"]["probability"] == pytest.approx(0.1111, abs=1e-4)
        assert rows["Core Router"]["probability"] == 1.0


class TestTable4:
    def test_paper_values(self, settings):
        report = run_experiment("table4", settings)
        models = report.data["models"]
        assert models["valancius"]["gamma_cdn_network"] == pytest.approx(1050.0)
        assert models["baliga"]["gamma_server"] == pytest.approx(281.3)
        assert models["valancius"]["pue"] == models["baliga"]["pue"] == 1.2


class TestFig2:
    @pytest.fixture(scope="class")
    def report(self, settings):
        return run_experiment("fig2", settings)

    def test_popularity_ordering(self, report):
        """Popular items save more than unpopular at every ratio."""
        for model in ("valancius", "baliga"):
            popular = report.data[f"{model}/tier-popular/1.0"]["sim_mean"]
            unpopular = report.data[f"{model}/tier-unpopular/1.0"]["sim_mean"]
            assert popular > unpopular

    def test_ratio_ordering(self, report):
        """Higher q/beta -> more savings (paper Fig. 2 columns)."""
        means = [
            report.data[f"valancius/tier-popular/{r}"]["sim_mean"]
            for r in (0.2, 0.6, 1.0)
        ]
        assert means == sorted(means)

    def test_theory_tracks_simulation(self, report):
        row = report.data["valancius/tier-popular/1.0"]
        assert row["mae"] < 0.1

    def test_valancius_above_baliga(self, report):
        v = report.data["valancius/tier-popular/1.0"]["sim_mean"]
        b = report.data["baliga/tier-popular/1.0"]["sim_mean"]
        assert v > b


class TestFig3:
    @pytest.fixture(scope="class")
    def report(self, settings):
        return run_experiment("fig3", settings)

    def test_heavy_tail(self, report):
        cap = report.data["capacity"]
        assert cap["max"] > 10 * cap["median"]

    def test_median_far_below_max(self, report):
        for model in ("valancius", "baliga"):
            stats = report.data[model]
            assert stats["median_item_savings"] < stats["max_item_savings"]

    def test_top_share_disproportionate(self, report):
        assert report.data["valancius"]["top1pct_share_of_savings"] > 0.05


class TestFig4:
    @pytest.fixture(scope="class")
    def report(self, settings):
        return run_experiment("fig4", settings)

    def test_isps_present(self, report):
        for isp in ("ISP-1", "ISP-4", "ISP-5"):
            assert f"valancius/{isp}" in report.data

    def test_biggest_isp_saves_most(self, report):
        big = report.data["valancius/ISP-1"]["mean_sim"]
        small = report.data["valancius/ISP-5"]["mean_sim"]
        assert big > small

    def test_theory_tracks_daily_sim(self, report):
        assert report.data["valancius/ISP-1"]["mae"] < 0.05

    def test_extrapolation_recovers_paper_band(self, report):
        """Capacity-rescaled Eq. 12 lands in the paper's headline range."""
        val = report.data["extrapolated/valancius"]
        bal = report.data["extrapolated/baliga"]
        assert 0.15 < val < 0.50
        assert 0.10 < bal < 0.35
        assert val > bal

    def test_one_series_point_per_day(self, report, settings):
        series = report.data["valancius/ISP-1"]["series_sim"]
        assert len(series) == settings.days


class TestFig5:
    @pytest.fixture(scope="class")
    def report(self, settings):
        return run_experiment("fig5", settings)

    def test_cct_asymptotes(self, report):
        assert report.data["valancius"]["asymptotic_cct"] == pytest.approx(0.18, abs=0.01)
        assert report.data["baliga"]["asymptotic_cct"] == pytest.approx(0.58, abs=0.01)

    def test_neutral_capacity_finite(self, report):
        for model in ("valancius", "baliga"):
            assert math.isfinite(report.data[model]["neutral_capacity"])

    def test_cdn_user_mirror(self, report):
        series = report.data["valancius"]["series"]
        for (c1, cdn), (c2, user) in zip(series["CDN"], series["User"]):
            assert cdn == pytest.approx(-user)

    def test_curves_span_paper_axis(self, report):
        series = report.data["valancius"]["series"]["End-to-End"]
        assert series[0][0] == pytest.approx(1e-3)
        assert series[-1][0] == pytest.approx(1e4)


class TestFig6:
    @pytest.fixture(scope="class")
    def report(self, settings):
        return run_experiment("fig6", settings)

    def test_baliga_more_positive(self, report):
        assert (
            report.data["baliga"]["carbon_positive_share"]
            >= report.data["valancius"]["carbon_positive_share"]
        )

    def test_cct_bounded_below(self, report):
        for model in ("valancius", "baliga"):
            assert report.data[model]["median_cct"] >= -1.0

    def test_renders(self, report):
        assert "CDF" in report.render()
