"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_command(self):
        args = build_parser().parse_args(["fig5", "--quick"])
        assert args.command == "fig5"
        assert args.quick

    def test_generate_command(self):
        args = build_parser().parse_args(["generate", "out.jsonl", "--days", "3"])
        assert args.command == "generate"
        assert args.days == 3

    def test_simulate_command(self):
        args = build_parser().parse_args(["simulate", "t.jsonl", "--upload-ratio", "0.4"])
        assert args.upload_ratio == 0.4


class TestCommands:
    def test_fig5_runs(self, capsys):
        assert main(["fig5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "CC Transfer" in out

    def test_tables_run(self, capsys):
        assert main(["tables", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Exchange Point" in out
        assert "Valancius" in out

    def test_fig_with_out_dir(self, tmp_path, capsys):
        assert main(["fig5", "--quick", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig5.txt").exists()

    def test_generate_and_simulate_round_trip(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["generate", str(path), "--quick"]) == 0
        assert path.exists()
        assert main(["simulate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "offload G" in out
        assert "valancius" in out


class TestReductionFlag:
    def test_reduction_parsed_into_settings(self):
        from repro.cli import _settings_from

        args = build_parser().parse_args(["fig5", "--reduction", "streaming"])
        settings = _settings_from(args)
        assert settings.reduction == "streaming"
        assert settings.simulation_config().reduction == "streaming"

    def test_quick_keeps_reduction(self):
        from repro.cli import _settings_from

        args = build_parser().parse_args(["fig5", "--quick", "--reduction", "spill"])
        settings = _settings_from(args)
        assert settings.scale == 0.05  # still the quick preset
        assert settings.reduction == "spill"

    def test_default_is_batched(self):
        from repro.cli import _settings_from

        args = build_parser().parse_args(["fig5", "--quick"])
        settings = _settings_from(args)
        assert settings.reduction is None
        assert settings.simulation_config().reduction == "batched"

    def test_rejects_unknown_reduction(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--reduction", "mapreduce"])

    def test_simulate_streaming_round_trip(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["generate", str(path), "--quick", "--days", "1"]) == 0
        assert main(["simulate", str(path), "--reduction", "streaming"]) == 0
        out = capsys.readouterr().out
        assert "offload G" in out

    def test_simulate_spill_dir_keeps_delta_log(self, tmp_path, capsys):
        from repro.sim.reduce import load_user_deltas

        path = tmp_path / "trace.jsonl"
        spill_dir = tmp_path / "spill"
        assert main(["generate", str(path), "--quick", "--days", "1"]) == 0
        assert (
            main(
                [
                    "simulate", str(path),
                    "--reduction", "spill",
                    "--spill-dir", str(spill_dir),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "per-user delta log: " in out
        log_path = out.rsplit("per-user delta log: ", 1)[1].strip()
        assert load_user_deltas(log_path)  # non-empty, parseable


class TestWorkersFlag:
    def test_workers_parsed_into_settings(self):
        from repro.cli import _settings_from

        args = build_parser().parse_args(["fig5", "--workers", "4"])
        assert args.workers == 4
        settings = _settings_from(args)
        assert settings.workers == 4
        assert settings.simulation_config().workers == 4

    def test_quick_keeps_workers(self):
        from repro.cli import _settings_from

        args = build_parser().parse_args(["fig5", "--quick", "--workers", "2"])
        settings = _settings_from(args)
        assert settings.scale == 0.05  # still the quick preset
        assert settings.workers == 2

    def test_simulate_accepts_workers_and_backend(self):
        args = build_parser().parse_args(
            ["simulate", "t.jsonl", "--workers", "2", "--backend", "thread"]
        )
        assert args.workers == 2
        assert args.backend == "thread"

    def test_simulate_parallel_round_trip(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["generate", str(path), "--quick", "--days", "1"]) == 0
        assert main(["simulate", str(path), "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "offload G" in out
