"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_command(self):
        args = build_parser().parse_args(["fig5", "--quick"])
        assert args.command == "fig5"
        assert args.quick

    def test_generate_command(self):
        args = build_parser().parse_args(["generate", "out.jsonl", "--days", "3"])
        assert args.command == "generate"
        assert args.days == 3

    def test_simulate_command(self):
        args = build_parser().parse_args(["simulate", "t.jsonl", "--upload-ratio", "0.4"])
        assert args.upload_ratio == 0.4


class TestCommands:
    def test_fig5_runs(self, capsys):
        assert main(["fig5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "CC Transfer" in out

    def test_tables_run(self, capsys):
        assert main(["tables", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Exchange Point" in out
        assert "Valancius" in out

    def test_fig_with_out_dir(self, tmp_path, capsys):
        assert main(["fig5", "--quick", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig5.txt").exists()

    def test_generate_and_simulate_round_trip(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["generate", str(path), "--quick"]) == 0
        assert path.exists()
        assert main(["simulate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "offload G" in out
        assert "valancius" in out


class TestReductionFlag:
    def test_reduction_parsed_into_settings(self):
        from repro.cli import _settings_from

        args = build_parser().parse_args(["fig5", "--reduction", "streaming"])
        settings = _settings_from(args)
        assert settings.reduction == "streaming"
        assert settings.simulation_config().reduction == "streaming"

    def test_quick_keeps_reduction(self):
        from repro.cli import _settings_from

        args = build_parser().parse_args(["fig5", "--quick", "--reduction", "spill"])
        settings = _settings_from(args)
        assert settings.scale == 0.05  # still the quick preset
        assert settings.reduction == "spill"

    def test_default_is_batched(self):
        from repro.cli import _settings_from

        args = build_parser().parse_args(["fig5", "--quick"])
        settings = _settings_from(args)
        assert settings.reduction is None
        assert settings.simulation_config().reduction == "batched"

    def test_rejects_unknown_reduction(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--reduction", "mapreduce"])

    def test_simulate_streaming_round_trip(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["generate", str(path), "--quick", "--days", "1"]) == 0
        assert main(["simulate", str(path), "--reduction", "streaming"]) == 0
        out = capsys.readouterr().out
        assert "offload G" in out

    def test_simulate_spill_dir_keeps_delta_log(self, tmp_path, capsys):
        from repro.sim.reduce import load_user_deltas

        path = tmp_path / "trace.jsonl"
        spill_dir = tmp_path / "spill"
        assert main(["generate", str(path), "--quick", "--days", "1"]) == 0
        assert (
            main(
                [
                    "simulate", str(path),
                    "--reduction", "spill",
                    "--spill-dir", str(spill_dir),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "per-user delta log: " in out
        log_path = out.rsplit("per-user delta log: ", 1)[1].strip()
        assert load_user_deltas(log_path)  # non-empty, parseable


class TestWorkersFlag:
    def test_workers_parsed_into_settings(self):
        from repro.cli import _settings_from

        args = build_parser().parse_args(["fig5", "--workers", "4"])
        assert args.workers == 4
        settings = _settings_from(args)
        assert settings.workers == 4
        assert settings.simulation_config().workers == 4

    def test_quick_keeps_workers(self):
        from repro.cli import _settings_from

        args = build_parser().parse_args(["fig5", "--quick", "--workers", "2"])
        settings = _settings_from(args)
        assert settings.scale == 0.05  # still the quick preset
        assert settings.workers == 2

    def test_simulate_accepts_workers_and_backend(self):
        args = build_parser().parse_args(
            ["simulate", "t.jsonl", "--workers", "2", "--backend", "thread"]
        )
        assert args.workers == 2
        assert args.backend == "thread"

    def test_simulate_parallel_round_trip(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["generate", str(path), "--quick", "--days", "1"]) == 0
        assert main(["simulate", str(path), "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "offload G" in out


class TestDistributedFlags:
    def test_simulate_accepts_distributed_backend(self, tmp_path):
        args = build_parser().parse_args(
            [
                "simulate", "t.jsonl",
                "--backend", "distributed",
                "--queue-dir", str(tmp_path / "q"),
                "--workers", "2",
            ]
        )
        assert args.backend == "distributed"
        assert str(args.queue_dir) == str(tmp_path / "q")

    def test_queue_dir_requires_distributed_backend(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["simulate", "t.jsonl", "--queue-dir", str(tmp_path)])
        with pytest.raises(SystemExit):
            main(
                [
                    "simulate", "t.jsonl",
                    "--backend", "process",
                    "--queue-dir", str(tmp_path),
                ]
            )

    def test_figure_commands_accept_backend(self):
        from repro.cli import _settings_from

        args = build_parser().parse_args(
            ["fig5", "--quick", "--backend", "serial"]
        )
        settings = _settings_from(args)
        assert settings.backend == "serial"
        assert settings.simulation_config().backend == "serial"

    def test_worker_parser(self, tmp_path):
        args = build_parser().parse_args(
            [
                "worker",
                "--queue-dir", str(tmp_path),
                "--max-tasks", "3",
                "--idle-exit", "0.5",
            ]
        )
        assert args.command == "worker"
        assert args.max_tasks == 3
        assert args.idle_exit == 0.5

    def test_worker_requires_queue_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])

    def test_worker_command_serves_and_exits(self, tmp_path):
        """`consume-local worker` drains a queue and exits with the
        distinct --max-tasks status so supervisors can tell the
        self-limit from a crash."""
        import pickle

        from repro.sim.engine import SimulationConfig
        from repro.sim.queue import JobSpec, WorkItem, WorkQueue, item_id_for
        from repro.sim.worker import EXIT_MAX_TASKS

        queue = WorkQueue(tmp_path / "job-cli", lease_timeout=30.0)
        queue.write_spec(JobSpec(kind="single", config=SimulationConfig()))
        queue.put(WorkItem(item_id=item_id_for(0), start_index=0, refs=()))
        assert main(
            [
                "worker",
                "--queue-dir", str(tmp_path),
                "--max-tasks", "1",
                "--idle-exit", "1.0",
            ]
        ) == EXIT_MAX_TASKS
        assert queue.result_ids() == {item_id_for(0)}
        assert pickle.loads(
            (queue.results_dir / f"{item_id_for(0)}.out").read_bytes()
        ) == []

    def test_simulate_distributed_round_trip(self, tmp_path, capsys):
        """generate -> simulate --backend distributed matches the serial
        CLI output byte for byte."""
        path = tmp_path / "trace.jsonl"
        assert main(["generate", str(path), "--quick", "--days", "1"]) == 0
        capsys.readouterr()  # drop the generate output
        assert main(["simulate", str(path)]) == 0
        serial_out = capsys.readouterr().out
        assert (
            main(
                [
                    "simulate", str(path),
                    "--backend", "distributed",
                    "--queue-dir", str(tmp_path / "q"),
                    "--workers", "2",
                ]
            )
            == 0
        )
        distributed_out = capsys.readouterr().out
        assert distributed_out == serial_out
