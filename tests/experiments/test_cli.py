"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_command(self):
        args = build_parser().parse_args(["fig5", "--quick"])
        assert args.command == "fig5"
        assert args.quick

    def test_generate_command(self):
        args = build_parser().parse_args(["generate", "out.jsonl", "--days", "3"])
        assert args.command == "generate"
        assert args.days == 3

    def test_simulate_command(self):
        args = build_parser().parse_args(["simulate", "t.jsonl", "--upload-ratio", "0.4"])
        assert args.upload_ratio == 0.4


class TestCommands:
    def test_fig5_runs(self, capsys):
        assert main(["fig5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "CC Transfer" in out

    def test_tables_run(self, capsys):
        assert main(["tables", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Exchange Point" in out
        assert "Valancius" in out

    def test_fig_with_out_dir(self, tmp_path, capsys):
        assert main(["fig5", "--quick", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig5.txt").exists()

    def test_generate_and_simulate_round_trip(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["generate", str(path), "--quick"]) == 0
        assert path.exists()
        assert main(["simulate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "offload G" in out
        assert "valancius" in out
