"""Smoke-run every ``examples/*.py`` at tiny scale.

The examples are executable documentation; nothing else imports them,
so API drift used to surface only when a reader ran one by hand.  Each
test runs an example as a subprocess -- exactly how a reader would --
and fails on a nonzero exit, with the example's stderr in the report.
Examples that take a ``--scale`` flag run well below their defaults so
the whole module stays interactive-fast.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"
SRC = REPO / "src"

#: Every example, with the smallest-scale invocation it supports.
CASES = sorted(
    (path.name, ["--scale", "0.05"] if "--scale" in path.read_text() else [])
    for path in EXAMPLES.glob("*.py")
)


def test_every_example_is_covered():
    """The parametrization below cannot silently miss a new example."""
    assert [name for name, _ in CASES] == sorted(
        path.name for path in EXAMPLES.glob("*.py")
    )
    assert CASES, "examples/ directory is empty?"


@pytest.mark.parametrize(
    ("name", "extra_args"), CASES, ids=[name for name, _ in CASES]
)
def test_example_runs(name: str, extra_args: list):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *extra_args],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{name} exited {proc.returncode}\n"
        f"--- stdout (tail) ---\n{proc.stdout[-2000:]}\n"
        f"--- stderr (tail) ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{name} produced no output"
