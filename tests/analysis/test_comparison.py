"""Tests for theory-vs-simulation comparison metrics."""

import pytest

from repro.analysis.comparison import ComparisonRow, compare_series


class TestComparisonRow:
    def test_errors(self):
        row = ComparisonRow(x=1.0, simulated=0.5, theoretical=0.4)
        assert row.error == pytest.approx(0.1)
        assert row.absolute_error == pytest.approx(0.1)

    def test_negative_error(self):
        row = ComparisonRow(x=1.0, simulated=0.3, theoretical=0.4)
        assert row.error == pytest.approx(-0.1)
        assert row.absolute_error == pytest.approx(0.1)


class TestCompareSeries:
    def test_perfect_agreement(self):
        series = [(1.0, 0.2), (2.0, 0.4)]
        summary = compare_series(series, series)
        assert summary.mean_absolute_error == 0.0
        assert summary.rmse == 0.0
        assert summary.bias == 0.0
        assert summary.within(0.0)

    def test_metrics(self):
        sim = [(1.0, 0.5), (2.0, 0.1)]
        theo = [(1.0, 0.4), (2.0, 0.3)]
        summary = compare_series(sim, theo)
        assert summary.mean_absolute_error == pytest.approx(0.15)
        assert summary.max_absolute_error == pytest.approx(0.2)
        assert summary.bias == pytest.approx((0.1 - 0.2) / 2)
        assert summary.rmse == pytest.approx(((0.01 + 0.04) / 2) ** 0.5)

    def test_within(self):
        sim = [(1.0, 0.5)]
        theo = [(1.0, 0.4)]
        summary = compare_series(sim, theo)
        assert summary.within(0.1)
        assert not summary.within(0.05)

    def test_pairs_sorted_on_x(self):
        sim = [(2.0, 0.2), (1.0, 0.1)]
        theo = [(1.0, 0.1), (2.0, 0.2)]
        summary = compare_series(sim, theo)
        assert summary.mean_absolute_error == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="lengths"):
            compare_series([(1.0, 0.1)], [(1.0, 0.1), (2.0, 0.2)])

    def test_x_mismatch_rejected(self):
        with pytest.raises(ValueError, match="x values"):
            compare_series([(1.0, 0.1)], [(1.5, 0.1)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compare_series([], [])
