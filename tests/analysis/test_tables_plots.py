"""Tests for table and ASCII chart rendering."""

import pytest

from repro.analysis.plots import ascii_chart
from repro.analysis.tables import format_value, render_table


class TestFormatValue:
    def test_int_grouping(self):
        assert format_value(1234567) == "1,234,567"

    def test_float_precision(self):
        assert format_value(0.123456, precision=3) == "0.123"

    def test_whole_float_as_int(self):
        assert format_value(5.0) == "5"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"

    def test_bool_not_treated_as_int(self):
        assert format_value(True) == "True"

    def test_nan(self):
        assert format_value(float("nan")) == "nan"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # all lines same width

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "========"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_headers_present(self):
        text = render_table(["alpha", "beta"], [["x", "y"]])
        assert "alpha" in text and "beta" in text


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart({"s1": [(1.0, 1.0), (2.0, 2.0)]})
        assert "* s1" in chart
        plot_body = "\n".join(chart.splitlines()[1:])
        assert "*" in plot_body

    def test_log_axis_labels(self):
        chart = ascii_chart({"s": [(0.01, 0.0), (100.0, 1.0)]}, log_x=True)
        assert "(log)" in chart

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_chart({"s": [(0.0, 1.0)]}, log_x=True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"s": []})

    def test_tiny_area_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({"s": [(0.0, 1.0)]}, width=2, height=2)

    def test_constant_series_does_not_crash(self):
        chart = ascii_chart({"flat": [(1.0, 0.5), (2.0, 0.5)]})
        assert "flat" in chart

    def test_multiple_series_distinct_markers(self):
        chart = ascii_chart(
            {"a": [(1.0, 0.0)], "b": [(2.0, 1.0)]},
            title="t",
        )
        assert "* a" in chart and "o b" in chart

    def test_y_bounds_labelled(self):
        chart = ascii_chart({"s": [(0.0, -1.0), (1.0, 1.0)]})
        assert "-1" in chart and "1" in chart
