"""Tests for empirical distributions."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.distributions import (
    EmpiricalDistribution,
    ccdf_points,
    ecdf_points,
)

SAMPLES = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200
)


class TestConstruction:
    def test_sorts_values(self):
        dist = EmpiricalDistribution.from_sample([3.0, 1.0, 2.0])
        assert dist.values == (1.0, 2.0, 3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution.from_sample([])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution.from_sample([1.0, math.nan])


class TestCdf:
    def test_step_values(self):
        dist = EmpiricalDistribution.from_sample([1.0, 2.0, 3.0, 4.0])
        assert dist.cdf(0.5) == 0.0
        assert dist.cdf(1.0) == 0.25
        assert dist.cdf(2.5) == 0.5
        assert dist.cdf(4.0) == 1.0

    def test_ccdf_complements(self):
        dist = EmpiricalDistribution.from_sample([1.0, 2.0, 3.0])
        for x in (-1.0, 1.5, 3.5):
            assert dist.cdf(x) + dist.ccdf(x) == pytest.approx(1.0)

    def test_duplicates_weighted(self):
        dist = EmpiricalDistribution.from_sample([1.0, 1.0, 1.0, 5.0])
        assert dist.cdf(1.0) == 0.75

    @given(sample=SAMPLES)
    @settings(max_examples=50)
    def test_cdf_monotone(self, sample):
        dist = EmpiricalDistribution.from_sample(sample)
        xs = sorted(sample)
        for a, b in zip(xs, xs[1:]):
            assert dist.cdf(a) <= dist.cdf(b)


class TestQuantiles:
    def test_median_odd(self):
        dist = EmpiricalDistribution.from_sample([1.0, 5.0, 3.0])
        assert dist.median == 3.0

    def test_extremes(self):
        dist = EmpiricalDistribution.from_sample([2.0, 8.0])
        assert dist.quantile(0.0) == 2.0
        assert dist.quantile(1.0) == 8.0
        assert dist.min == 2.0
        assert dist.max == 8.0

    def test_invalid_q(self):
        dist = EmpiricalDistribution.from_sample([1.0])
        with pytest.raises(ValueError):
            dist.quantile(1.5)

    def test_mean(self):
        dist = EmpiricalDistribution.from_sample([1.0, 2.0, 3.0])
        assert dist.mean == pytest.approx(2.0)

    @given(sample=SAMPLES, q=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50)
    def test_quantile_in_sample(self, sample, q):
        dist = EmpiricalDistribution.from_sample(sample)
        assert dist.quantile(q) in dist.values


class TestShareAbove:
    def test_top_mass_share(self):
        dist = EmpiricalDistribution.from_sample([1.0, 1.0, 8.0])
        assert dist.share_above(1.0) == pytest.approx(0.8)

    def test_zero_total(self):
        dist = EmpiricalDistribution.from_sample([0.0, 0.0])
        assert dist.share_above(0.0) == 0.0


class TestPointHelpers:
    def test_ecdf_points(self):
        points = ecdf_points([1.0, 2.0, 2.0, 3.0])
        assert points == [(1.0, 0.25), (2.0, 0.75), (3.0, 1.0)]

    def test_ccdf_points(self):
        points = ccdf_points([1.0, 2.0])
        assert points == [(1.0, 0.5), (2.0, 0.0)]

    def test_ecdf_ends_at_one(self):
        points = ecdf_points([5.0, -2.0, 7.5])
        assert points[-1][1] == pytest.approx(1.0)
