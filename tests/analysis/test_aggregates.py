"""Tests for aggregate statistics over simulation results."""

import pytest

from repro.analysis.aggregates import (
    daily_theory_savings,
    median_item_savings,
    per_item_savings,
    top_share_of_savings,
    weighted_theory_savings,
)
from repro.core.energy import BALIGA, VALANCIUS
from repro.sim import SimulationConfig, simulate
from repro.trace.generator import GeneratorConfig, TraceGenerator


@pytest.fixture(scope="module")
def trace():
    config = GeneratorConfig(
        num_users=1_500, num_items=100, days=3, expected_sessions=12_000, seed=23
    )
    return TraceGenerator(config=config).generate()


@pytest.fixture(scope="module")
def result(trace):
    return simulate(trace, SimulationConfig(upload_ratio=1.0))


class TestPerItemSavings:
    def test_one_entry_per_item(self, result):
        items = per_item_savings(result, VALANCIUS)
        assert len(items) == len(result.per_content_results())

    def test_values_bounded(self, result):
        for s in per_item_savings(result, VALANCIUS).values():
            assert -1.0 <= s < 1.0

    def test_median_below_head(self, result):
        """The catalogue skew: median item saves far less than the top."""
        items = per_item_savings(result, VALANCIUS)
        median = median_item_savings(result, VALANCIUS)
        assert median < max(items.values())


class TestTopShare:
    def test_top_share_bounds(self, result):
        share = top_share_of_savings(result, VALANCIUS, 0.01)
        assert 0.0 <= share <= 1.0

    def test_larger_fraction_larger_share(self, result):
        top1 = top_share_of_savings(result, VALANCIUS, 0.01)
        top10 = top_share_of_savings(result, VALANCIUS, 0.10)
        assert top10 >= top1

    def test_whole_catalogue_is_everything(self, result):
        assert top_share_of_savings(result, VALANCIUS, 1.0) == pytest.approx(1.0)

    def test_disproportionate_head(self, result):
        """Paper: top-1 % of items capture >20 % of the savings."""
        share = top_share_of_savings(result, VALANCIUS, 0.01)
        assert share > 0.05  # strongly disproportionate even at small scale

    def test_invalid_fraction(self, result):
        with pytest.raises(ValueError):
            top_share_of_savings(result, VALANCIUS, 0.0)


class TestWeightedTheory:
    def test_weighted_between_extremes(self, result):
        swarms = list(result.per_swarm.values())
        weighted = weighted_theory_savings(swarms, VALANCIUS)
        from repro.core.savings import SavingsModel

        model = SavingsModel(VALANCIUS)
        individual = [model.savings(s.capacity) for s in swarms]
        assert min(individual) <= weighted <= max(individual)

    def test_tracks_simulation(self, result):
        weighted = weighted_theory_savings(result.per_swarm.values(), VALANCIUS)
        assert weighted == pytest.approx(result.savings(VALANCIUS), abs=0.05)

    def test_empty_is_zero(self):
        assert weighted_theory_savings([], VALANCIUS) == 0.0


class TestDailyTheory:
    def test_one_row_per_day(self, trace):
        rows = daily_theory_savings(trace, "ISP-1", VALANCIUS)
        assert [day for day, _ in rows] == [0, 1, 2]

    def test_values_bounded(self, trace):
        for _, s in daily_theory_savings(trace, "ISP-1", BALIGA):
            assert -1.0 < s < 1.0

    def test_unknown_isp_empty(self, trace):
        assert daily_theory_savings(trace, "ISP-99", VALANCIUS) == []

    def test_tracks_daily_simulation(self, trace, result):
        theo = dict(daily_theory_savings(trace, "ISP-1", VALANCIUS))
        sim = dict(result.daily_savings("ISP-1", VALANCIUS))
        for day in sim:
            assert theo[day] == pytest.approx(sim[day], abs=0.06)
