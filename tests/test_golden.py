"""Golden regression: fresh figure runs must match the pinned fixtures.

The fixtures under ``tests/golden/`` were produced by
``python -m repro.experiments.golden`` on the seeded ~5K-session
mini-trace and pin every machine-readable number the Fig. 2-6 paths
report.  The comparison is **bit-for-bit** (floats round-trip through
``repr``), so any refactor that silently moves the physics -- however
slightly -- fails here, even if every internal-consistency test still
passes.  If the change is intentional, regenerate the fixtures and
review the numeric diff::

    PYTHONPATH=src python -m repro.experiments.golden tests/golden
"""

import json
from pathlib import Path

import pytest

from repro.experiments.golden import (
    GOLDEN_EXPERIMENTS,
    GOLDEN_SETTINGS,
    golden_payload,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


def walk_mismatches(expected, actual, path=""):
    """Yield human-readable 'where and what' for every differing leaf."""
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual), key=str):
            if key not in expected:
                yield f"{path}/{key}: unexpected new key"
            elif key not in actual:
                yield f"{path}/{key}: key disappeared"
            else:
                yield from walk_mismatches(
                    expected[key], actual[key], f"{path}/{key}"
                )
    elif isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            yield f"{path}: length {len(expected)} -> {len(actual)}"
        for index, (exp, act) in enumerate(zip(expected, actual)):
            yield from walk_mismatches(exp, act, f"{path}[{index}]")
    elif expected != actual or type(expected) is not type(actual):
        # The type check catches drifts Python equality forgives
        # (5 -> 5.0, True -> 1) but the serialized bytes do not.
        yield f"{path}: {expected!r} -> {actual!r}"


class TestGoldenFixtures:
    def test_fixtures_are_committed(self):
        missing = [
            name
            for name in GOLDEN_EXPERIMENTS
            if not (GOLDEN_DIR / f"{name}.json").exists()
        ]
        assert not missing, (
            f"golden fixtures missing for {missing}; regenerate with "
            f"'PYTHONPATH=src python -m repro.experiments.golden tests/golden'"
        )

    @pytest.mark.parametrize("name", GOLDEN_EXPERIMENTS)
    def test_fresh_run_matches_golden(self, name):
        expected = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        actual = golden_payload(name)
        mismatches = list(walk_mismatches(expected, actual))
        assert not mismatches, (
            f"{name} drifted from its golden fixture "
            f"(seed={GOLDEN_SETTINGS.seed}, scale={GOLDEN_SETTINGS.scale}, "
            f"days={GOLDEN_SETTINGS.days}); first diffs:\n  "
            + "\n  ".join(mismatches[:20])
        )

    def test_fixture_json_round_trips_exactly(self):
        """The serialization itself must be lossless: loading a fixture
        and re-dumping it reproduces the committed bytes."""
        for name in GOLDEN_EXPERIMENTS:
            path = GOLDEN_DIR / f"{name}.json"
            payload = json.loads(path.read_text())
            assert (
                json.dumps(payload, indent=1, sort_keys=True) + "\n"
                == path.read_text()
            )
