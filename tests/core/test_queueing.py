"""Tests for the M/M/inf swarm queueing model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import queueing

CAPACITIES = st.floats(min_value=0.0, max_value=500.0, allow_nan=False)
SMALL_CAPACITIES = st.floats(min_value=1e-6, max_value=50.0, allow_nan=False)


class TestCapacity:
    def test_littles_law(self):
        # 2 arrivals/s, 30 min sessions -> 3600 concurrent viewers.
        assert queueing.capacity(2.0, 1800.0) == pytest.approx(3600.0)

    def test_zero_arrivals(self):
        assert queueing.capacity(0.0, 1800.0) == 0.0

    def test_zero_duration(self):
        assert queueing.capacity(5.0, 0.0) == 0.0

    @pytest.mark.parametrize("rate,duration", [(-1.0, 1.0), (1.0, -1.0), (math.nan, 1.0), (1.0, math.inf)])
    def test_invalid_inputs_rejected(self, rate, duration):
        with pytest.raises(ValueError):
            queueing.capacity(rate, duration)

    @given(rate=st.floats(min_value=0, max_value=1e4), duration=st.floats(min_value=0, max_value=1e5))
    def test_capacity_is_product(self, rate, duration):
        assert queueing.capacity(rate, duration) == rate * duration


class TestBusyProbability:
    def test_empty_swarm(self):
        assert queueing.busy_probability(0.0) == 0.0

    def test_unit_capacity(self):
        assert queueing.busy_probability(1.0) == pytest.approx(1 - math.exp(-1))

    def test_saturates_to_one(self):
        assert queueing.busy_probability(100.0) == pytest.approx(1.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            queueing.busy_probability(-0.1)

    @given(c=CAPACITIES)
    def test_bounds(self, c):
        p = queueing.busy_probability(c)
        assert 0.0 <= p <= 1.0

    @given(c=st.floats(min_value=0.0, max_value=100.0))
    def test_monotone_in_capacity(self, c):
        assert queueing.busy_probability(c + 0.5) >= queueing.busy_probability(c)


class TestOccupancyPmf:
    def test_zero_capacity_concentrated_at_zero(self):
        assert queueing.occupancy_pmf(0.0, 0) == 1.0
        assert queueing.occupancy_pmf(0.0, 3) == 0.0

    def test_matches_poisson_formula(self):
        c, n = 3.5, 4
        expected = math.exp(-c) * c**n / math.factorial(n)
        assert queueing.occupancy_pmf(c, n) == pytest.approx(expected)

    def test_large_occupancy_stable(self):
        # naive c**n overflows near n ~ 150 for c = 200; lgamma form must not.
        value = queueing.occupancy_pmf(200.0, 200)
        assert 0.0 < value < 1.0

    def test_negative_occupancy_rejected(self):
        with pytest.raises(ValueError):
            queueing.occupancy_pmf(1.0, -1)

    @given(c=SMALL_CAPACITIES)
    def test_pmf_sums_to_one(self, c):
        total = sum(queueing.occupancy_pmf(c, n) for n in range(queueing.truncation_bound(c)))
        assert total == pytest.approx(1.0, abs=1e-9)


class TestOccupancyCdf:
    def test_negative_is_zero(self):
        assert queueing.occupancy_cdf(2.0, -1) == 0.0

    def test_complete_mass(self):
        assert queueing.occupancy_cdf(2.0, 200) == pytest.approx(1.0)

    def test_median_of_large_mean_near_mean(self):
        assert queueing.occupancy_cdf(50.0, 50) == pytest.approx(0.5, abs=0.05)

    @given(c=SMALL_CAPACITIES, n=st.integers(min_value=0, max_value=80))
    def test_cdf_monotone(self, c, n):
        assert queueing.occupancy_cdf(c, n + 1) >= queueing.occupancy_cdf(c, n)


class TestExpectedValue:
    def test_identity_gives_mean(self):
        assert queueing.expected_value(7.3, lambda n: n) == pytest.approx(7.3)

    def test_constant_function(self):
        assert queueing.expected_value(4.0, lambda n: 2.5) == pytest.approx(2.5)

    def test_second_moment(self):
        c = 5.0  # E[L^2] = c + c^2 for Poisson
        assert queueing.expected_value(c, lambda n: n * n) == pytest.approx(c + c * c)

    def test_zero_capacity(self):
        assert queueing.expected_value(0.0, lambda n: n + 10) == 10.0

    @given(c=SMALL_CAPACITIES)
    def test_indicator_matches_busy_probability(self, c):
        online = queueing.expected_value(c, lambda n: 1.0 if n > 0 else 0.0)
        assert online == pytest.approx(queueing.busy_probability(c), abs=1e-9)


class TestExpectedExcessPeers:
    def test_closed_form_matches_exact_sum(self):
        for c in (0.01, 0.5, 1.0, 3.0, 25.0):
            exact = queueing.expected_value(c, lambda n: max(n - 1, 0))
            assert queueing.expected_excess_peers(c) == pytest.approx(exact, abs=1e-9)

    def test_equals_c_minus_busy_probability(self):
        c = 2.0
        expected = c - queueing.busy_probability(c)
        assert queueing.expected_excess_peers(c) == pytest.approx(expected)

    @given(c=CAPACITIES)
    def test_nonnegative_and_below_capacity(self, c):
        value = queueing.expected_excess_peers(c)
        assert 0.0 <= value <= c


class TestSwarmDynamics:
    def test_capacity_property(self):
        dyn = queueing.SwarmDynamics(arrival_rate=0.5, mean_duration=60.0)
        assert dyn.capacity == pytest.approx(30.0)

    def test_busy_probability_property(self):
        dyn = queueing.SwarmDynamics(arrival_rate=1.0, mean_duration=1.0)
        assert dyn.busy_probability == pytest.approx(1 - math.exp(-1))

    def test_from_capacity_round_trips(self):
        dyn = queueing.SwarmDynamics.from_capacity(12.5)
        assert dyn.capacity == pytest.approx(12.5)

    def test_from_capacity_with_duration(self):
        dyn = queueing.SwarmDynamics.from_capacity(10.0, mean_duration=100.0)
        assert dyn.arrival_rate == pytest.approx(0.1)

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            queueing.SwarmDynamics.from_capacity(1.0, mean_duration=0.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            queueing.SwarmDynamics(arrival_rate=-1.0, mean_duration=10.0)

    def test_frozen(self):
        dyn = queueing.SwarmDynamics(arrival_rate=1.0, mean_duration=1.0)
        with pytest.raises(AttributeError):
            dyn.arrival_rate = 2.0


class TestTruncationBound:
    def test_floor_for_tiny_capacity(self):
        assert queueing.truncation_bound(0.001) >= 32

    def test_scales_with_capacity(self):
        assert queueing.truncation_bound(10_000.0) > 10_000

    @given(c=CAPACITIES)
    def test_tail_mass_negligible(self, c):
        bound = queueing.truncation_bound(c)
        assert 1.0 - queueing.occupancy_cdf(c, bound) < 1e-9
