"""Tests for the participation and lingering-seed extensions."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analytical import offload_fraction
from repro.core.energy import BALIGA, VALANCIUS
from repro.core.extensions import (
    energy_savings_extended,
    offload_fraction_with_linger,
    offload_fraction_with_participation,
)
from repro.core.analytical import energy_savings

CAPS = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
RATES = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestParticipation:
    def test_full_participation_reduces_to_eq3(self):
        for c in (0.1, 1.0, 10.0, 100.0):
            assert offload_fraction_with_participation(c, 1.0) == pytest.approx(
                offload_fraction(c)
            )

    def test_no_participation_no_offload(self):
        assert offload_fraction_with_participation(10.0, 0.0) == 0.0

    def test_akamai_30_percent(self):
        """Paper Section VI: Akamai sees ~30 % participation."""
        full = offload_fraction_with_participation(50.0, 1.0)
        akamai = offload_fraction_with_participation(50.0, 0.3)
        assert akamai == pytest.approx(0.3 * full, rel=1e-9)

    def test_high_upload_compensates(self):
        """a*q/beta saturates at 1: fast uploaders offset absentees."""
        g = offload_fraction_with_participation(50.0, 0.5, upload_ratio=2.0)
        assert g == pytest.approx(offload_fraction(50.0), rel=1e-9)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            offload_fraction_with_participation(1.0, -0.1)
        with pytest.raises(ValueError):
            offload_fraction_with_participation(1.0, 1.1)

    @given(c=CAPS, rate=RATES)
    def test_bounds_and_monotonicity(self, c, rate):
        g = offload_fraction_with_participation(c, rate)
        assert 0.0 <= g <= 1.0
        assert g <= offload_fraction(c) + 1e-12


class TestLinger:
    def test_zero_linger_reduces_to_participation_model(self):
        for c in (0.5, 5.0, 50.0):
            assert offload_fraction_with_linger(c, 0.0) == pytest.approx(
                offload_fraction_with_participation(c, 1.0)
            )

    def test_linger_increases_offload(self):
        base = offload_fraction_with_linger(2.0, 0.0, upload_ratio=0.5)
        cached = offload_fraction_with_linger(2.0, 1.0, upload_ratio=0.5)
        assert cached > base

    def test_linger_breaks_the_seed_barrier(self):
        """Without caching G < occupancy < 1; long linger approaches 1
        because even the seed stream can come from a cached copy."""
        base = offload_fraction_with_linger(3.0, 0.0)
        long_cache = offload_fraction_with_linger(3.0, 10.0)
        assert long_cache > base
        assert long_cache > 0.9

    def test_zero_capacity(self):
        assert offload_fraction_with_linger(0.0, 5.0) == 0.0

    def test_invalid_linger(self):
        with pytest.raises(ValueError):
            offload_fraction_with_linger(1.0, -0.5)

    @given(
        c=st.floats(min_value=0.01, max_value=30.0),
        linger=st.floats(min_value=0.0, max_value=5.0),
        ratio=st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_bounds(self, c, linger, ratio):
        g = offload_fraction_with_linger(c, linger, upload_ratio=ratio)
        assert 0.0 <= g <= 1.0

    @given(c=st.floats(min_value=0.1, max_value=20.0))
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_linger(self, c):
        values = [
            offload_fraction_with_linger(c, linger, upload_ratio=0.5)
            for linger in (0.0, 0.5, 1.0, 2.0)
        ]
        assert values == sorted(values)


class TestExtendedSavings:
    def test_reduces_to_eq12_at_defaults(self):
        """With full participation and no linger the extension must sit
        close to the master equation (it swaps the exact Eq. 10 weighting
        for a mean-gamma approximation)."""
        for c in (1.0, 10.0, 100.0):
            base = energy_savings(c, VALANCIUS)
            ext = energy_savings_extended(c, VALANCIUS)
            assert ext == pytest.approx(base, abs=0.03)

    def test_linger_adds_savings(self):
        base = energy_savings_extended(2.0, VALANCIUS, linger_ratio=0.0)
        cached = energy_savings_extended(2.0, VALANCIUS, linger_ratio=2.0)
        assert cached > base

    def test_low_participation_hurts(self):
        full = energy_savings_extended(20.0, BALIGA, participation_rate=1.0)
        akamai = energy_savings_extended(20.0, BALIGA, participation_rate=0.3)
        assert akamai < full

    def test_linger_can_offset_low_participation(self):
        """Caching at 30 % participation can beat no-cache full
        participation at moderate capacities -- the design insight the
        extension exists to expose."""
        akamai_cached = energy_savings_extended(
            5.0, VALANCIUS, participation_rate=0.3, linger_ratio=8.0
        )
        akamai_plain = energy_savings_extended(
            5.0, VALANCIUS, participation_rate=0.3, linger_ratio=0.0
        )
        assert akamai_cached > 2 * akamai_plain

    def test_zero_capacity(self):
        assert energy_savings_extended(0.0, VALANCIUS, linger_ratio=1.0) == 0.0


class TestSimulatorAgreement:
    """Pin the semi-closed forms against the engine (stationary trace)."""

    @pytest.fixture(scope="class")
    def flat_trace(self):
        from repro.trace import FLAT_PROFILE, GeneratorConfig, TraceGenerator

        config = GeneratorConfig(
            num_users=2_500,
            num_items=1,
            days=3,
            expected_sessions=0,
            pinned_views={"hit": 3_000.0},
            seed=41,
        )
        return TraceGenerator(config=config, profile=FLAT_PROFILE).generate()

    def test_participation_tracks_sim(self, flat_trace):
        from repro.sim import SimulationConfig, simulate

        result = simulate(
            flat_trace, SimulationConfig(upload_ratio=1.0, participation_rate=0.5)
        )
        big = max(result.per_swarm.values(), key=lambda r: r.capacity)
        theo = offload_fraction_with_participation(big.capacity, 0.5)
        assert big.ledger.offload_fraction == pytest.approx(theo, rel=0.2)

    def test_linger_tracks_sim(self, flat_trace):
        from repro.sim import SimulationConfig, simulate

        mean_duration = sum(s.duration for s in flat_trace) / len(flat_trace)
        result = simulate(
            flat_trace,
            SimulationConfig(upload_ratio=0.5, seed_linger_seconds=mean_duration),
        )
        big = max(result.per_swarm.values(), key=lambda r: r.capacity)
        theo = offload_fraction_with_linger(big.capacity, 1.0, upload_ratio=0.5)
        assert big.ledger.offload_fraction == pytest.approx(theo, rel=0.12)
