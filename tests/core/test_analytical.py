"""Tests for the master equation (Eq. 12) and its ingredients."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import analytical
from repro.core.analytical import (
    energy_savings,
    offload_fraction,
    peer_network_energy_per_bit,
    savings_breakdown,
    savings_curve,
)
from repro.core.energy import BALIGA, VALANCIUS, builtin_models
from repro.core.localisation import LONDON_LAYERS, LayerProbabilities

CAPS = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
RATIOS = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestOffloadFraction:
    def test_empty_swarm_offloads_nothing(self):
        assert offload_fraction(0.0) == 0.0

    def test_footnote_three(self):
        # Paper footnote 3: at c = 1, G = 0.37 * q/beta.
        assert offload_fraction(1.0) == pytest.approx(math.exp(-1), abs=1e-4)
        assert offload_fraction(1.0, 0.5) == pytest.approx(0.5 * math.exp(-1), abs=1e-4)

    def test_large_swarm_saturates(self):
        assert offload_fraction(1e4) == pytest.approx(1.0, abs=1e-3)

    def test_upload_ratio_scales_linearly(self):
        c = 5.0
        assert offload_fraction(c, 0.4) == pytest.approx(0.4 * offload_fraction(c, 1.0))

    def test_cap_at_one(self):
        assert offload_fraction(1e6, 2.0) == 1.0

    def test_uncapped_raw_value(self):
        raw = offload_fraction(1e6, 2.0, cap=False)
        assert raw == pytest.approx(2.0, abs=1e-3)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            offload_fraction(-1.0)
        with pytest.raises(ValueError):
            offload_fraction(1.0, -0.1)
        with pytest.raises(ValueError):
            offload_fraction(math.nan)

    @given(c=CAPS, ratio=RATIOS)
    def test_bounds(self, c, ratio):
        g = offload_fraction(c, ratio)
        assert 0.0 <= g <= 1.0
        assert g <= ratio + 1e-12

    @given(c=st.floats(min_value=0.0, max_value=1e3))
    def test_monotone_in_capacity(self, c):
        assert offload_fraction(c + 1.0) >= offload_fraction(c) - 1e-12


class TestPeerNetworkEnergy:
    def test_zero_capacity_is_free(self):
        assert peer_network_energy_per_bit(0.0, VALANCIUS) == 0.0

    def test_large_swarm_converges_to_local_path_cost(self):
        """As c -> inf the per-watched-bit cost tends to PUE * gamma_exp * q/b."""
        cost = peer_network_energy_per_bit(1e5, VALANCIUS)
        assert cost == pytest.approx(1.2 * 300.0, rel=0.01)

    def test_scales_with_upload_ratio(self):
        c = 10.0
        full = peer_network_energy_per_bit(c, VALANCIUS, upload_ratio=1.0)
        half = peer_network_energy_per_bit(c, VALANCIUS, upload_ratio=0.5)
        assert half == pytest.approx(0.5 * full)

    def test_hand_computed_value_at_c100(self):
        """Pinned against the by-hand expansion used to validate the model."""
        cost = peer_network_energy_per_bit(100.0, VALANCIUS)
        assert cost == pytest.approx(623.1, rel=1e-3)

    @given(c=st.floats(min_value=0.0, max_value=1e4), ratio=RATIOS)
    def test_nonnegative(self, c, ratio):
        assert peer_network_energy_per_bit(c, BALIGA, upload_ratio=ratio) >= 0.0


class TestEnergySavings:
    """The master equation against the paper's Fig. 2 anchor points."""

    def test_valancius_peak_savings(self):
        # Fig. 2 top-left: popular item, q/b = 1, savings climb to ~0.45-0.48.
        assert energy_savings(100.0, VALANCIUS) == pytest.approx(0.4747, abs=0.002)

    def test_baliga_peak_savings(self):
        # Fig. 2 bottom-left: ~0.29 for Baliga at large capacity.
        assert energy_savings(100.0, BALIGA) == pytest.approx(0.2903, abs=0.002)

    def test_asymptotic_savings_valancius(self):
        # c -> inf, q/b = 1: S -> (psi_s - psi_m - PUE*g_exp)/psi_s = 0.6457.
        assert energy_savings(1e6, VALANCIUS) == pytest.approx(0.6457, abs=1e-3)

    @pytest.mark.parametrize("model", builtin_models(), ids=lambda m: m.name)
    def test_headline_band_at_q04(self, model):
        """Paper: savings remain over 10% in both models at q/b = 0.4."""
        assert energy_savings(100.0, model, upload_ratio=0.4) > 0.10

    @pytest.mark.parametrize("model", builtin_models(), ids=lambda m: m.name)
    def test_tiny_swarms_save_little(self, model):
        assert abs(energy_savings(0.01, model)) < 0.02

    @pytest.mark.parametrize("model", builtin_models(), ids=lambda m: m.name)
    @given(c=st.floats(min_value=0.01, max_value=1e4))
    @settings(max_examples=40, deadline=None)
    def test_savings_below_offload_bound(self, model, c):
        """S can never beat offloading G of the traffic for free."""
        assert energy_savings(c, model) <= offload_fraction(c) + 1e-9

    @pytest.mark.parametrize("model", builtin_models(), ids=lambda m: m.name)
    def test_monotone_increasing_in_capacity(self, model):
        capacities = [0.1, 0.5, 1, 2, 5, 10, 50, 100, 1000]
        values = [energy_savings(c, model) for c in capacities]
        assert values == sorted(values)

    def test_custom_layers_change_answer(self):
        flat = LayerProbabilities(exchange=0.5, pop=0.75, core=1.0)
        # Dense localisation -> cheaper P2P paths -> larger savings.
        assert energy_savings(10.0, VALANCIUS, layers=flat) > energy_savings(
            10.0, VALANCIUS, layers=LONDON_LAYERS
        )

    def test_negative_savings_possible_with_hot_modems(self):
        """If modems dominate, P2P costs more than the CDN (paper Sec. II)."""
        hot = VALANCIUS.with_overrides(gamma_modem=900.0)
        assert energy_savings(2.0, hot) < 0.0


class TestSavingsBreakdown:
    def test_cdn_equals_offload_fraction(self):
        row = savings_breakdown(10.0, VALANCIUS)
        assert row.cdn == pytest.approx(row.offload_fraction)

    def test_user_is_negative_offload(self):
        row = savings_breakdown(10.0, VALANCIUS)
        assert row.user == pytest.approx(-row.offload_fraction)

    def test_end_to_end_matches_master_equation(self):
        row = savings_breakdown(3.0, BALIGA)
        assert row.end_to_end == pytest.approx(energy_savings(3.0, BALIGA))

    def test_cct_starts_at_minus_one(self):
        row = savings_breakdown(0.0, VALANCIUS)
        assert row.carbon_credit_transfer == pytest.approx(-1.0)

    @pytest.mark.parametrize("model,limit", [(VALANCIUS, 0.1837), (BALIGA, 0.5774)])
    def test_cct_asymptotes(self, model, limit):
        row = savings_breakdown(1e6, model)
        assert row.carbon_credit_transfer == pytest.approx(limit, abs=1e-3)

    def test_capacity_recorded(self):
        assert savings_breakdown(42.0, VALANCIUS).capacity == 42.0


class TestSavingsCurve:
    def test_returns_pairs_in_order(self):
        capacities = [0.1, 1.0, 10.0]
        curve = savings_curve(capacities, VALANCIUS)
        assert [c for c, _ in curve] == capacities
        for c, s in curve:
            assert s == pytest.approx(energy_savings(c, VALANCIUS))

    def test_empty_sweep(self):
        assert savings_curve([], BALIGA) == []

    def test_respects_upload_ratio(self):
        curve = savings_curve([10.0], VALANCIUS, upload_ratio=0.2)
        assert curve[0][1] == pytest.approx(energy_savings(10.0, VALANCIUS, upload_ratio=0.2))
