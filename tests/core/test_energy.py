"""Tests for the per-bit energy models (paper Table IV, Eqs. 4-6)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.energy import (
    BALIGA,
    BUILTIN_MODELS,
    EnergyModel,
    PER_HOP_NJ_PER_BIT,
    VALANCIUS,
    VALANCIUS_HOP_COUNTS,
    builtin_models,
)
from repro.topology.layers import NetworkLayer


class TestTableIVConstants:
    """Pin the built-in parameter sets to the paper's Table IV."""

    def test_valancius_row(self):
        assert VALANCIUS.gamma_server == pytest.approx(211.1)
        assert VALANCIUS.gamma_modem == pytest.approx(100.0)
        assert VALANCIUS.gamma_cdn_network == pytest.approx(1050.0)
        assert VALANCIUS.gamma_exchange == pytest.approx(300.0)
        assert VALANCIUS.gamma_pop == pytest.approx(600.0)
        assert VALANCIUS.gamma_core == pytest.approx(900.0)

    def test_baliga_row(self):
        assert BALIGA.gamma_server == pytest.approx(281.3)
        assert BALIGA.gamma_modem == pytest.approx(100.0)
        assert BALIGA.gamma_cdn_network == pytest.approx(142.5)
        assert BALIGA.gamma_exchange == pytest.approx(144.86)
        assert BALIGA.gamma_pop == pytest.approx(197.48)
        assert BALIGA.gamma_core == pytest.approx(245.74)

    @pytest.mark.parametrize("model", builtin_models(), ids=lambda m: m.name)
    def test_shared_overheads(self, model):
        # PUE and loss are taken from Valancius et al. for both models.
        assert model.pue == pytest.approx(1.2)
        assert model.loss == pytest.approx(1.07)

    def test_valancius_derived_from_hop_counts(self):
        # Table IV caption: network params are h x 150 nJ/bit.
        assert VALANCIUS.gamma_cdn_network == 7 * PER_HOP_NJ_PER_BIT
        assert VALANCIUS.gamma_core == 6 * PER_HOP_NJ_PER_BIT
        assert VALANCIUS.gamma_pop == 4 * PER_HOP_NJ_PER_BIT
        assert VALANCIUS.gamma_exchange == 2 * PER_HOP_NJ_PER_BIT

    def test_builtin_registry(self):
        assert set(BUILTIN_MODELS) == {"valancius", "baliga"}
        assert BUILTIN_MODELS["valancius"] is VALANCIUS
        assert BUILTIN_MODELS["baliga"] is BALIGA


class TestPerBitCosts:
    def test_psi_server_valancius(self):
        # 1.2 * (211.1 + 1050) + 1.07 * 100 = 1620.32
        assert VALANCIUS.psi_server == pytest.approx(1620.32)

    def test_psi_server_baliga(self):
        # 1.2 * (281.3 + 142.5) + 1.07 * 100 = 615.56
        assert BALIGA.psi_server == pytest.approx(615.56)

    @pytest.mark.parametrize("model", builtin_models(), ids=lambda m: m.name)
    def test_psi_peer_modem_double_counts(self, model):
        assert model.psi_peer_modem == pytest.approx(2 * model.loss * model.gamma_modem)

    def test_psi_peer_combines_modem_and_network(self):
        gamma = 300.0
        expected = VALANCIUS.psi_peer_modem + 1.2 * gamma
        assert VALANCIUS.psi_peer(gamma) == pytest.approx(expected)

    def test_psi_peer_network_rejects_negative(self):
        with pytest.raises(ValueError):
            VALANCIUS.psi_peer_network(-1.0)

    @pytest.mark.parametrize("model", builtin_models(), ids=lambda m: m.name)
    def test_peer_beats_server_at_exchange(self, model):
        """The whole premise: a local peer path is cheaper than the CDN."""
        assert model.psi_peer(model.gamma_exchange) < model.psi_server

    def test_gamma_for_layer(self):
        assert VALANCIUS.gamma_for_layer(NetworkLayer.EXCHANGE) == 300.0
        assert VALANCIUS.gamma_for_layer(NetworkLayer.POP) == 600.0
        assert VALANCIUS.gamma_for_layer(NetworkLayer.CORE) == 900.0

    def test_gamma_for_server_layer_rejected(self):
        with pytest.raises(KeyError):
            VALANCIUS.gamma_for_layer(NetworkLayer.SERVER)


class TestTransferEnergy:
    def test_server_energy_scales_linearly(self):
        assert VALANCIUS.server_energy_nj(2e6) == pytest.approx(2 * VALANCIUS.server_energy_nj(1e6))

    def test_peer_energy_prefers_lower_layers(self):
        bits = 1e6
        exp = VALANCIUS.peer_energy_nj(bits, NetworkLayer.EXCHANGE)
        pop = VALANCIUS.peer_energy_nj(bits, NetworkLayer.POP)
        core = VALANCIUS.peer_energy_nj(bits, NetworkLayer.CORE)
        assert exp < pop < core

    def test_zero_bits_zero_energy(self):
        assert VALANCIUS.server_energy_nj(0) == 0.0
        assert VALANCIUS.peer_energy_nj(0, NetworkLayer.CORE) == 0.0

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            VALANCIUS.server_energy_nj(-1)
        with pytest.raises(ValueError):
            VALANCIUS.peer_energy_nj(-1, NetworkLayer.POP)
        with pytest.raises(ValueError):
            VALANCIUS.user_download_energy_nj(-1)

    def test_user_upload_symmetric_with_download(self):
        assert VALANCIUS.user_upload_energy_nj(5e5) == VALANCIUS.user_download_energy_nj(5e5)

    def test_cdn_server_energy_is_pue_inflated_server_only(self):
        bits = 1e6
        assert VALANCIUS.cdn_server_energy_nj(bits) == pytest.approx(bits * 1.2 * 211.1)

    @given(bits=st.floats(min_value=0, max_value=1e15))
    def test_peer_transfer_decomposes(self, bits):
        """Peer transfer = 2 modem halves + PUE-inflated network."""
        total = BALIGA.peer_energy_nj(bits, NetworkLayer.POP)
        parts = (
            BALIGA.user_download_energy_nj(bits)
            + BALIGA.user_upload_energy_nj(bits)
            + bits * BALIGA.pue * BALIGA.gamma_pop
        )
        assert total == pytest.approx(parts)


class TestValidation:
    def test_negative_gamma_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(
                name="bad", gamma_server=-1, gamma_modem=1, gamma_cdn_network=1,
                gamma_exchange=1, gamma_pop=1, gamma_core=1,
            )

    def test_pue_below_one_rejected(self):
        with pytest.raises(ValueError):
            VALANCIUS.with_overrides(pue=0.9)

    def test_loss_below_one_rejected(self):
        with pytest.raises(ValueError):
            VALANCIUS.with_overrides(loss=0.5)

    def test_non_monotone_layers_rejected(self):
        with pytest.raises(ValueError):
            VALANCIUS.with_overrides(gamma_exchange=1000.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            VALANCIUS.gamma_server = 0.0


class TestConstruction:
    def test_with_overrides_returns_new_model(self):
        hot = VALANCIUS.with_overrides(gamma_modem=150.0)
        assert hot.gamma_modem == 150.0
        assert VALANCIUS.gamma_modem == 100.0
        assert hot.name == VALANCIUS.name

    def test_from_hop_counts_custom(self):
        model = EnergyModel.from_hop_counts(
            "custom", gamma_server=100.0, gamma_modem=50.0, per_hop=10.0,
            hops={"cdn": 10, "core": 8, "pop": 5, "exchange": 2},
        )
        assert model.gamma_cdn_network == 100.0
        assert model.gamma_exchange == 20.0

    def test_from_hop_counts_missing_key_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            EnergyModel.from_hop_counts(
                "bad", gamma_server=1.0, gamma_modem=1.0, hops={"cdn": 7},
            )

    def test_as_table_row_round_trip(self):
        row = BALIGA.as_table_row()
        rebuilt = EnergyModel(name="copy", **row)
        assert rebuilt.psi_server == pytest.approx(BALIGA.psi_server)

    def test_valancius_matches_hop_table(self):
        rebuilt = EnergyModel.from_hop_counts(
            "valancius", gamma_server=211.1, gamma_modem=100.0,
            hops=VALANCIUS_HOP_COUNTS,
        )
        assert rebuilt == VALANCIUS
