"""Tests for the carbon-credit transfer scheme (paper Section V, Eq. 13)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import carbon
from repro.core.carbon import (
    CarbonIntensity,
    UK_GRID_2014,
    UserFootprint,
    asymptotic_carbon_positivity,
    carbon_credit_transfer,
    carbon_credit_transfer_at_capacity,
    neutrality_capacity,
    neutrality_offload_fraction,
)
from repro.core.analytical import offload_fraction
from repro.core.energy import BALIGA, VALANCIUS, builtin_models

FRACTIONS = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestCarbonCreditTransfer:
    def test_no_sharing_full_footprint(self):
        assert carbon_credit_transfer(0.0, VALANCIUS) == pytest.approx(-1.0)
        assert carbon_credit_transfer(0.0, BALIGA) == pytest.approx(-1.0)

    def test_full_offload_valancius(self):
        # (1.2*211.1 - 1.07*100*2) / (1.07*100*2) = 0.1837 -> "18 %".
        assert carbon_credit_transfer(1.0, VALANCIUS) == pytest.approx(0.1837, abs=1e-3)

    def test_full_offload_baliga(self):
        # (1.2*281.3 - 214) / 214 = 0.5774 -> "58 %".
        assert carbon_credit_transfer(1.0, BALIGA) == pytest.approx(0.5774, abs=1e-3)

    def test_matches_eq13_form(self):
        g = 0.6
        model = VALANCIUS
        num = model.pue * model.gamma_server * g - model.loss * model.gamma_modem * (1 + g)
        den = model.loss * model.gamma_modem * (1 + g)
        assert carbon_credit_transfer(g, model) == pytest.approx(num / den)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            carbon_credit_transfer(-0.1, VALANCIUS)
        with pytest.raises(ValueError):
            carbon_credit_transfer(1.1, VALANCIUS)

    @pytest.mark.parametrize("model", builtin_models(), ids=lambda m: m.name)
    @given(g=FRACTIONS)
    def test_bounded_below_by_minus_one(self, model, g):
        assert carbon_credit_transfer(g, model) >= -1.0

    @pytest.mark.parametrize("model", builtin_models(), ids=lambda m: m.name)
    def test_monotone_in_offload(self, model):
        values = [carbon_credit_transfer(g / 10, model) for g in range(11)]
        assert values == sorted(values)


class TestCarbonCreditTransferAtCapacity:
    def test_composes_with_offload_fraction(self):
        c = 7.0
        expected = carbon_credit_transfer(offload_fraction(c), VALANCIUS)
        assert carbon_credit_transfer_at_capacity(c, VALANCIUS) == pytest.approx(expected)

    def test_zero_capacity(self):
        assert carbon_credit_transfer_at_capacity(0.0, BALIGA) == pytest.approx(-1.0)

    def test_upload_ratio_respected(self):
        c = 20.0
        limited = carbon_credit_transfer_at_capacity(c, VALANCIUS, upload_ratio=0.2)
        full = carbon_credit_transfer_at_capacity(c, VALANCIUS, upload_ratio=1.0)
        assert limited < full


class TestNeutralityThreshold:
    def test_valancius_threshold(self):
        # l*g_m / (PUE*g_s - l*g_m) = 107 / 146.32.
        assert neutrality_offload_fraction(VALANCIUS) == pytest.approx(107 / 146.32, abs=1e-4)

    def test_baliga_threshold(self):
        assert neutrality_offload_fraction(BALIGA) == pytest.approx(107 / 230.56, abs=1e-4)

    @pytest.mark.parametrize("model", builtin_models(), ids=lambda m: m.name)
    def test_threshold_zeroes_eq13(self, model):
        g_star = neutrality_offload_fraction(model)
        assert carbon_credit_transfer(g_star, model) == pytest.approx(0.0, abs=1e-12)

    def test_unreachable_when_modems_dominate(self):
        heavy = VALANCIUS.with_overrides(gamma_modem=500.0)
        assert neutrality_offload_fraction(heavy) == math.inf

    def test_printed_erratum_does_not_zero_eq13(self):
        """The AAM prints PUE*gamma_m in the numerator; that G does not
        actually make Eq. 13 vanish."""
        model = VALANCIUS
        printed = (model.pue * model.gamma_modem) / (
            model.pue * model.gamma_server - model.loss * model.gamma_modem
        )
        assert carbon_credit_transfer(printed, model) != pytest.approx(0.0, abs=1e-3)


class TestNeutralityCapacity:
    @pytest.mark.parametrize("model", builtin_models(), ids=lambda m: m.name)
    def test_capacity_achieves_neutrality(self, model):
        c_star = neutrality_capacity(model)
        assert carbon_credit_transfer_at_capacity(c_star, model) == pytest.approx(0.0, abs=1e-6)

    def test_baliga_needs_smaller_swarms(self):
        # Baliga's hotter servers make credits worth more.
        assert neutrality_capacity(BALIGA) < neutrality_capacity(VALANCIUS)

    def test_infinite_when_ratio_too_low(self):
        # With q/b = 0.5 the max offload (0.5) < G* (0.73) for Valancius.
        assert neutrality_capacity(VALANCIUS, upload_ratio=0.5) == math.inf

    def test_infinite_when_unreachable(self):
        heavy = VALANCIUS.with_overrides(gamma_modem=500.0)
        assert neutrality_capacity(heavy) == math.inf


class TestAsymptoticCarbonPositivity:
    def test_paper_values(self):
        assert asymptotic_carbon_positivity(VALANCIUS) == pytest.approx(0.18, abs=0.005)
        assert asymptotic_carbon_positivity(BALIGA) == pytest.approx(0.58, abs=0.005)


class TestUserFootprint:
    def test_modem_bits(self):
        fp = UserFootprint(watched_bits=100.0, uploaded_bits=40.0)
        assert fp.modem_bits == 140.0

    def test_footprint_energy(self):
        fp = UserFootprint(watched_bits=1e6, uploaded_bits=0.0)
        assert fp.footprint_nj(VALANCIUS) == pytest.approx(1.07 * 100 * 1e6)

    def test_credit_energy(self):
        fp = UserFootprint(watched_bits=0.0, uploaded_bits=1e6)
        assert fp.credit_nj(VALANCIUS) == pytest.approx(1.2 * 211.1 * 1e6)

    def test_non_sharer_is_fully_negative(self):
        fp = UserFootprint(watched_bits=1e9, uploaded_bits=0.0)
        assert fp.carbon_credit_transfer(VALANCIUS) == pytest.approx(-1.0)

    def test_idle_user_is_neutral(self):
        fp = UserFootprint(watched_bits=0.0, uploaded_bits=0.0)
        assert fp.carbon_credit_transfer(VALANCIUS) == 0.0
        assert fp.is_carbon_positive(VALANCIUS)

    def test_matches_eq13_when_upload_equals_g_times_watch(self):
        """Per-user accounting reduces to Eq. 13 when U = G * T."""
        g = 0.5
        fp = UserFootprint(watched_bits=1e6, uploaded_bits=g * 1e6)
        assert fp.carbon_credit_transfer(BALIGA) == pytest.approx(
            carbon_credit_transfer(g, BALIGA)
        )

    def test_heavy_uploader_is_positive(self):
        fp = UserFootprint(watched_bits=1e6, uploaded_bits=5e6)
        assert fp.is_carbon_positive(BALIGA)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            UserFootprint(watched_bits=-1.0)
        with pytest.raises(ValueError):
            UserFootprint(watched_bits=1.0, uploaded_bits=-1.0)

    @given(
        watched=st.floats(min_value=0, max_value=1e12),
        uploaded=st.floats(min_value=0, max_value=1e12),
    )
    def test_cct_bounded_below(self, watched, uploaded):
        fp = UserFootprint(watched_bits=watched, uploaded_bits=uploaded)
        assert fp.carbon_credit_transfer(VALANCIUS) >= -1.0


class TestCarbonIntensity:
    def test_grams_for_nj(self):
        # 3.6e15 nJ = 1 kWh.
        assert UK_GRID_2014.grams_for_nj(3.6e15) == pytest.approx(450.0)

    def test_grams_for_bits(self):
        grid = CarbonIntensity(grams_co2_per_kwh=100.0)
        assert grid.grams_for_bits(3.6e15, 1.0) == pytest.approx(100.0)

    def test_zero_energy_zero_grams(self):
        assert UK_GRID_2014.grams_for_nj(0.0) == 0.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            CarbonIntensity(grams_co2_per_kwh=-1.0)
        with pytest.raises(ValueError):
            UK_GRID_2014.grams_for_nj(-1.0)
        with pytest.raises(ValueError):
            UK_GRID_2014.grams_for_bits(-1.0, 1.0)
