"""Tests for the SavingsModel facade."""

import math

import pytest

from repro.core import (
    BALIGA,
    SavingsModel,
    VALANCIUS,
    energy_savings,
    offload_fraction,
)
from repro.core.localisation import LayerProbabilities


@pytest.fixture
def valancius():
    return SavingsModel(VALANCIUS)


@pytest.fixture
def baliga():
    return SavingsModel(BALIGA)


class TestFacadeDelegation:
    def test_savings_matches_function(self, valancius):
        assert valancius.savings(10.0) == pytest.approx(energy_savings(10.0, VALANCIUS))

    def test_offload_matches_function(self, valancius):
        assert valancius.offload_fraction(3.0) == pytest.approx(offload_fraction(3.0))

    def test_upload_ratio_threaded_through(self):
        model = SavingsModel(VALANCIUS, upload_ratio=0.4)
        assert model.savings(50.0) == pytest.approx(
            energy_savings(50.0, VALANCIUS, upload_ratio=0.4)
        )

    def test_custom_layers_threaded_through(self):
        layers = LayerProbabilities(exchange=0.25, pop=0.5, core=1.0)
        model = SavingsModel(VALANCIUS, layers=layers)
        assert model.savings(5.0) == pytest.approx(
            energy_savings(5.0, VALANCIUS, layers=layers)
        )

    def test_curve_shape(self, baliga):
        curve = baliga.savings_curve([0.1, 1, 10])
        assert len(curve) == 3
        assert curve[0][0] == 0.1

    def test_negative_ratio_rejected(self):
        with pytest.raises(ValueError):
            SavingsModel(VALANCIUS, upload_ratio=-1.0)


class TestPaperAnchors:
    def test_fig2_popular_item_levels(self, valancius, baliga):
        """Fig. 2 left column: 35-48 % (Valancius), 24-29 % (Baliga)."""
        assert 0.35 <= valancius.savings(60.0) <= 0.48
        assert 0.24 <= baliga.savings(60.0) <= 0.30

    def test_breakdown_consistency(self, valancius):
        row = valancius.breakdown(10.0)
        assert row.cdn == -row.user
        assert row.end_to_end == pytest.approx(valancius.savings(10.0))
        assert row.carbon_credit_transfer == pytest.approx(
            valancius.carbon_credit_transfer(10.0)
        )

    def test_neutrality_capacities_ordered(self, valancius, baliga):
        assert baliga.neutrality_capacity() < valancius.neutrality_capacity()

    def test_neutrality_unreachable_at_low_ratio(self):
        model = SavingsModel(VALANCIUS, upload_ratio=0.2)
        assert model.neutrality_capacity() == math.inf

    def test_asymptotic_positivity(self, valancius, baliga):
        assert valancius.asymptotic_carbon_positivity() == pytest.approx(0.18, abs=0.005)
        assert baliga.asymptotic_carbon_positivity() == pytest.approx(0.58, abs=0.005)


class TestVariants:
    def test_with_upload_ratio_creates_new(self, valancius):
        slow = valancius.with_upload_ratio(0.2)
        assert slow.upload_ratio == 0.2
        assert valancius.upload_ratio == 1.0
        assert slow.energy is valancius.energy

    def test_frozen(self, valancius):
        with pytest.raises(AttributeError):
            valancius.upload_ratio = 0.5
