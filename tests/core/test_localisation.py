"""Tests for peer localisation probabilities and the corrected Eq. 10/11."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import localisation, queueing
from repro.core.localisation import (
    LONDON_LAYERS,
    LayerProbabilities,
    expected_weighted_gamma,
    expected_weighted_gamma_exact,
    gamma_p2p,
    localisation_probability,
    peer_found_probability,
    poisson_weighted_localisation,
    poisson_weighted_localisation_exact,
)
from repro.topology.layers import NetworkLayer

VALANCIUS_GAMMAS = {
    NetworkLayer.EXCHANGE: 300.0,
    NetworkLayer.POP: 600.0,
    NetworkLayer.CORE: 900.0,
}

PROBS = st.floats(min_value=1e-4, max_value=1.0, allow_nan=False)
CAPS = st.floats(min_value=0.0, max_value=200.0, allow_nan=False)


class TestLayerProbabilities:
    def test_table_iii_values(self):
        # Table III: 345 ExP -> 0.29 %, 9 PoP -> 11.11 %, 1 core -> 100 %.
        assert LONDON_LAYERS.exchange == pytest.approx(0.0029, abs=1e-4)
        assert LONDON_LAYERS.pop == pytest.approx(0.1111, abs=1e-4)
        assert LONDON_LAYERS.core == 1.0

    def test_from_counts(self):
        layers = LayerProbabilities.from_counts(exchanges=100, pops=10)
        assert layers.exchange == pytest.approx(0.01)
        assert layers.pop == pytest.approx(0.1)
        assert layers.core == 1.0

    def test_from_counts_rejects_widening_tree(self):
        with pytest.raises(ValueError, match="narrow"):
            LayerProbabilities.from_counts(exchanges=5, pops=10)

    def test_from_counts_rejects_zero(self):
        with pytest.raises(ValueError):
            LayerProbabilities.from_counts(exchanges=0, pops=0)

    def test_monotone_probabilities_required(self):
        with pytest.raises(ValueError, match="monotone"):
            LayerProbabilities(exchange=0.5, pop=0.1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            LayerProbabilities(exchange=0.0, pop=0.5)
        with pytest.raises(ValueError):
            LayerProbabilities(exchange=0.1, pop=1.5)

    def test_for_layer(self):
        assert LONDON_LAYERS.for_layer(NetworkLayer.EXCHANGE) == LONDON_LAYERS.exchange
        assert LONDON_LAYERS.for_layer(NetworkLayer.POP) == LONDON_LAYERS.pop
        assert LONDON_LAYERS.for_layer(NetworkLayer.CORE) == LONDON_LAYERS.core

    def test_for_layer_rejects_server(self):
        with pytest.raises(ValueError):
            LONDON_LAYERS.for_layer(NetworkLayer.SERVER)

    def test_as_mapping(self):
        mapping = LONDON_LAYERS.as_mapping()
        assert set(mapping) == {"exchange", "pop", "core"}


class TestLocalisationProbability:
    def test_inverse_count(self):
        assert localisation_probability(345) == pytest.approx(1 / 345)

    def test_single_node_certain(self):
        assert localisation_probability(1) == 1.0

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            localisation_probability(0)


class TestPeerFoundProbability:
    def test_alone_means_no_peer(self):
        assert peer_found_probability(0.5, 1) == 0.0
        assert peer_found_probability(1.0, 1) == 0.0

    def test_certain_layer_with_two_users(self):
        assert peer_found_probability(1.0, 2) == 1.0

    def test_formula(self):
        # P = 1 - (1 - p)^(L-1)
        assert peer_found_probability(0.1, 3) == pytest.approx(1 - 0.9**2)

    def test_zero_users_rejected(self):
        with pytest.raises(ValueError):
            peer_found_probability(0.1, 0)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            peer_found_probability(0.0, 5)
        with pytest.raises(ValueError):
            peer_found_probability(1.1, 5)

    @given(p=PROBS, n=st.integers(min_value=1, max_value=1000))
    def test_bounds(self, p, n):
        value = peer_found_probability(p, n)
        assert 0.0 <= value <= 1.0

    @given(p=PROBS, n=st.integers(min_value=1, max_value=500))
    def test_monotone_in_swarm_size(self, p, n):
        assert peer_found_probability(p, n + 1) >= peer_found_probability(p, n)

    @given(n=st.integers(min_value=2, max_value=500))
    def test_monotone_in_probability(self, n):
        low = peer_found_probability(LONDON_LAYERS.exchange, n)
        mid = peer_found_probability(LONDON_LAYERS.pop, n)
        high = peer_found_probability(LONDON_LAYERS.core, n)
        assert low <= mid <= high


class TestGammaP2P:
    def test_single_viewer_costs_nothing(self):
        assert gamma_p2p(VALANCIUS_GAMMAS, LONDON_LAYERS, 1) == 0.0

    def test_two_viewers_dominated_by_core(self):
        # With p_exp, p_pop small, two random viewers almost surely meet
        # only at the core.
        cost = gamma_p2p(VALANCIUS_GAMMAS, LONDON_LAYERS, 2)
        assert cost == pytest.approx(900.0, rel=0.05)
        assert cost < 900.0  # a little mass at cheaper layers

    def test_huge_swarm_converges_to_exchange(self):
        cost = gamma_p2p(VALANCIUS_GAMMAS, LONDON_LAYERS, 5000)
        assert cost == pytest.approx(300.0, rel=0.01)

    def test_mixture_weights_sum_correctly(self):
        """gamma_p2p is a convex combination scaled by P_core(L)."""
        L = 10
        p_exp = peer_found_probability(LONDON_LAYERS.exchange, L)
        p_pop = peer_found_probability(LONDON_LAYERS.pop, L)
        p_core = peer_found_probability(LONDON_LAYERS.core, L)
        expected = 300 * p_exp + 600 * (p_pop - p_exp) + 900 * (p_core - p_pop)
        assert gamma_p2p(VALANCIUS_GAMMAS, LONDON_LAYERS, L) == pytest.approx(expected)

    @given(n=st.integers(min_value=1, max_value=2000))
    def test_bounded_by_layer_extremes(self, n):
        cost = gamma_p2p(VALANCIUS_GAMMAS, LONDON_LAYERS, n)
        assert 0.0 <= cost <= 900.0

    @given(n=st.integers(min_value=2, max_value=1000))
    def test_monotone_decreasing_in_swarm_size(self, n):
        """Bigger swarms find closer peers, so per-bit cost falls."""
        assert (
            gamma_p2p(VALANCIUS_GAMMAS, LONDON_LAYERS, n + 1)
            <= gamma_p2p(VALANCIUS_GAMMAS, LONDON_LAYERS, n) + 1e-12
        )


class TestPoissonWeightedLocalisation:
    """Pin the corrected closed form of Eq. 11 against exact sums."""

    @pytest.mark.parametrize("p", [1 / 345, 1 / 9, 0.5, 1.0])
    @pytest.mark.parametrize("c", [0.01, 0.3, 1.0, 4.0, 30.0, 150.0])
    def test_closed_form_matches_exact_sum(self, p, c):
        closed = poisson_weighted_localisation(p, c)
        exact = poisson_weighted_localisation_exact(p, c)
        assert closed == pytest.approx(exact, abs=1e-8, rel=1e-8)

    def test_p_one_branch(self):
        c = 3.0
        assert poisson_weighted_localisation(1.0, c) == pytest.approx(c - 1 + math.exp(-c))

    def test_p_near_one_continuous(self):
        c = 3.0
        near = poisson_weighted_localisation(1.0 - 1e-12, c)
        at = poisson_weighted_localisation(1.0, c)
        assert near == pytest.approx(at, abs=1e-9)

    def test_zero_capacity(self):
        assert poisson_weighted_localisation(0.5, 0.0) == pytest.approx(0.0, abs=1e-12)

    def test_printed_erratum_numerator_is_wrong(self):
        """The AAM's printed numerator disagrees with the exact Poisson sum."""
        p, c = 1 / 9, 10.0
        printed = (math.exp(-c * p) * (1 - c + c * p) - math.exp(-c * p)) / (1 - p) + c - 1
        exact = poisson_weighted_localisation_exact(p, c)
        assert printed != pytest.approx(exact, rel=1e-3)

    @given(p=PROBS, c=st.floats(min_value=0.0, max_value=100.0))
    def test_nonnegative_and_below_excess_peers(self, p, c):
        value = poisson_weighted_localisation(p, c)
        assert value >= -1e-9
        assert value <= queueing.expected_excess_peers(c) + 1e-9

    @given(c=st.floats(min_value=0.01, max_value=100.0))
    def test_monotone_in_probability(self, c):
        low = poisson_weighted_localisation(0.01, c)
        high = poisson_weighted_localisation(0.5, c)
        assert low <= high + 1e-12


class TestExpectedWeightedGamma:
    """Pin the corrected Eq. 10 combination against brute force."""

    @pytest.mark.parametrize("c", [0.05, 0.5, 1.0, 10.0, 100.0])
    def test_closed_form_matches_exact(self, c):
        closed = expected_weighted_gamma(VALANCIUS_GAMMAS, LONDON_LAYERS, c)
        exact = expected_weighted_gamma_exact(VALANCIUS_GAMMAS, LONDON_LAYERS, c)
        assert closed == pytest.approx(exact, rel=1e-7, abs=1e-7)

    def test_large_capacity_tends_to_exchange_rate(self):
        """Per-peer per-bit cost converges to gamma_exp as swarms grow.

        This is the property the printed (sign-flipped) Eq. 10 violates.
        """
        c = 50_000.0
        weighted = expected_weighted_gamma(VALANCIUS_GAMMAS, LONDON_LAYERS, c)
        per_peer = weighted / queueing.expected_excess_peers(c)
        assert per_peer == pytest.approx(300.0, rel=0.02)

    def test_small_capacity_pays_pair_rate(self):
        """At c -> 0 the conditional swarm is a pair, so the per-peer
        per-bit cost tends to gamma_p2p(2) (~866 for Valancius/London:
        two random users still share a PoP 11% of the time)."""
        c = 0.01
        weighted = expected_weighted_gamma(VALANCIUS_GAMMAS, LONDON_LAYERS, c)
        per_peer = weighted / queueing.expected_excess_peers(c)
        pair_rate = gamma_p2p(VALANCIUS_GAMMAS, LONDON_LAYERS, 2)
        assert per_peer == pytest.approx(pair_rate, rel=0.01)

    def test_printed_sign_order_diverges(self):
        """The printed coefficient order grows towards 2*core - exp."""
        c = 50_000.0
        f = poisson_weighted_localisation
        printed = (
            (600 - 300) * f(LONDON_LAYERS.exchange, c)
            + (900 - 600) * f(LONDON_LAYERS.pop, c)
            + 900 * f(LONDON_LAYERS.core, c)
        )
        per_peer = printed / queueing.expected_excess_peers(c)
        assert per_peer == pytest.approx(2 * 900 - 300, rel=0.02)  # nonsense value

    @given(c=st.floats(min_value=0.0, max_value=150.0))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_exact(self, c):
        closed = expected_weighted_gamma(VALANCIUS_GAMMAS, LONDON_LAYERS, c)
        exact = expected_weighted_gamma_exact(VALANCIUS_GAMMAS, LONDON_LAYERS, c)
        assert closed == pytest.approx(exact, rel=1e-6, abs=1e-6)
