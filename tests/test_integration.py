"""End-to-end integration tests across every layer of the library.

These exercise the full pipeline -- generate -> persist -> reload ->
simulate -> analyse -> report -- the way a downstream user would, and pin
the cross-layer invariants no single-module test can see.
"""

import subprocess
import sys

import pytest

from repro.analysis import compare_series, weighted_theory_savings
from repro.core import BALIGA, SavingsModel, VALANCIUS
from repro.sim import SimulationConfig, Simulator, simulate
from repro.sim.accounting import baseline_energy_nj, hybrid_energy_nj
from repro.trace import (
    GeneratorConfig,
    TraceGenerator,
    load_jsonl,
    save_jsonl,
    summarise,
)

CONFIG = GeneratorConfig(
    num_users=1_000, num_items=60, days=3, expected_sessions=8_000, seed=77
)


@pytest.fixture(scope="module")
def trace():
    return TraceGenerator(config=CONFIG).generate()


@pytest.fixture(scope="module")
def result(trace):
    return simulate(trace, SimulationConfig(upload_ratio=1.0))


class TestPipelineRoundTrip:
    def test_persisted_trace_simulates_identically(self, trace, result, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        reloaded = load_jsonl(path)
        rerun = simulate(reloaded, SimulationConfig(upload_ratio=1.0))
        assert rerun.total.server_bits == pytest.approx(result.total.server_bits)
        assert rerun.total.total_peer_bits == pytest.approx(
            result.total.total_peer_bits
        )
        assert rerun.savings(VALANCIUS) == pytest.approx(result.savings(VALANCIUS))

    def test_generation_reproducible_across_processes(self, trace):
        """Seeds must survive process boundaries (no salted hashing)."""
        code = (
            "from repro.trace import GeneratorConfig, TraceGenerator\n"
            f"config = GeneratorConfig(num_users={CONFIG.num_users}, "
            f"num_items={CONFIG.num_items}, days={CONFIG.days}, "
            f"expected_sessions={CONFIG.expected_sessions}, seed={CONFIG.seed})\n"
            "t = TraceGenerator(config=config).generate()\n"
            "print(len(t), t.sessions[0].user_id, t.sessions[-1].session_id)\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, check=True
        ).stdout.split()
        assert int(out[0]) == len(trace)
        assert int(out[1]) == trace.sessions[0].user_id
        assert int(out[2]) == trace.sessions[-1].session_id


class TestCrossLayerInvariants:
    def test_stats_agree_with_simulation(self, trace, result):
        stats = summarise(trace)
        assert stats.num_sessions == sum(
            r.ledger.sessions for r in result.per_swarm.values()
        )
        assert set(result.per_user) <= set(trace.user_ids)

    def test_energy_decomposition_consistent(self, result):
        """System savings recompute from raw ledger energies (Eq. 1)."""
        for model in (VALANCIUS, BALIGA):
            hybrid = hybrid_energy_nj(result.total, model)
            baseline = baseline_energy_nj(result.total, model)
            assert result.savings(model) == pytest.approx(1 - hybrid / baseline)
            assert hybrid <= baseline  # peering never costs extra here

    def test_theory_tracks_system_savings(self, result):
        weighted = weighted_theory_savings(result.per_swarm.values(), VALANCIUS)
        assert weighted == pytest.approx(result.savings(VALANCIUS), abs=0.05)

    def test_daily_series_compare_cleanly(self, trace, result):
        from repro.analysis import daily_theory_savings

        sim = [(float(d), s) for d, s in result.daily_savings("ISP-1", VALANCIUS)]
        theo = [
            (float(d), s) for d, s in daily_theory_savings(trace, "ISP-1", VALANCIUS)
        ]
        summary = compare_series(sim, theo)
        assert summary.mean_absolute_error < 0.05

    def test_upload_ratio_monotonicity_end_to_end(self, trace):
        savings = []
        for ratio in (0.2, 0.6, 1.0):
            res = simulate(trace, SimulationConfig(upload_ratio=ratio))
            savings.append(res.savings(VALANCIUS))
        assert savings == sorted(savings)

    def test_simulation_deterministic(self, trace, result):
        rerun = Simulator(SimulationConfig(upload_ratio=1.0)).run(trace)
        assert rerun.total.server_bits == result.total.server_bits
        assert rerun.total.peer_bits == result.total.peer_bits


class TestModelFacadeAgainstSimulation:
    def test_per_swarm_predictions(self, result):
        """Eq. 12 predicts each sizeable sub-swarm's simulated savings."""
        model = SavingsModel(VALANCIUS)
        checked = 0
        for swarm in result.per_swarm.values():
            if swarm.capacity < 1.0:
                continue
            predicted = model.savings(swarm.capacity)
            # Diurnal bunching makes simulated swarms slightly denser
            # than a stationary Poisson at equal mean capacity, so the
            # simulation may sit a little above theory.
            assert swarm.savings(VALANCIUS) == pytest.approx(predicted, abs=0.06)
            checked += 1
        assert checked >= 2
