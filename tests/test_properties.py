"""Cross-cutting property-based tests (hypothesis).

Complement the per-module suites with randomized structure: arbitrary
sessions must round-trip through persistence unchanged, and the matcher
must satisfy its conservation laws under adversarial swarm shapes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.matching import PeerState, match_window
from repro.topology.layers import NetworkLayer
from repro.topology.nodes import AttachmentPoint
from repro.trace.events import Session
from repro.trace.loader import session_from_record, session_to_record

# --- strategies -------------------------------------------------------

attachments = st.builds(
    AttachmentPoint,
    isp=st.sampled_from(["ISP-1", "ISP-2", "ISP-3"]),
    pop=st.integers(min_value=0, max_value=8),
    exchange=st.integers(min_value=0, max_value=344),
)

sessions = st.builds(
    Session,
    session_id=st.integers(min_value=0, max_value=2**31),
    user_id=st.integers(min_value=0, max_value=2**31),
    content_id=st.text(
        alphabet=st.characters(whitelist_categories=("L", "N")), min_size=1, max_size=20
    ),
    start=st.floats(min_value=0.0, max_value=2_592_000.0, allow_nan=False),
    duration=st.floats(min_value=1.0, max_value=36_000.0, allow_nan=False),
    bitrate=st.floats(min_value=1e5, max_value=1e8, allow_nan=False),
    attachment=attachments,
    device=st.sampled_from(["tv", "desktop", "mobile", "unknown"]),
)


def peer_states(max_size: int):
    return st.lists(
        st.builds(
            PeerState,
            member_id=st.integers(min_value=0, max_value=10_000),
            user_id=st.integers(min_value=0, max_value=50),
            demand=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            supply=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            exchange=st.integers(min_value=0, max_value=5),
            pop=st.integers(min_value=0, max_value=2),
            isp=st.sampled_from(["ISP-1", "ISP-2"]),
        ),
        min_size=0,
        max_size=max_size,
        unique_by=lambda m: m.member_id,
    )


# --- persistence round-trip -------------------------------------------


class TestSessionRoundTrip:
    @given(session=sessions)
    @settings(max_examples=200)
    def test_record_round_trip_exact(self, session):
        assert session_from_record(session_to_record(session)) == session

    @given(session=sessions)
    @settings(max_examples=50)
    def test_json_round_trip_exact(self, session):
        import json

        record = json.loads(json.dumps(session_to_record(session)))
        assert session_from_record(record) == session


# --- matcher conservation laws ----------------------------------------


class TestMatcherProperties:
    @given(members=peer_states(max_size=14), cross=st.booleans(), local=st.booleans())
    @settings(max_examples=150, deadline=None)
    def test_conservation_and_caps(self, members, cross, local):
        allocation = match_window(members, allow_cross_isp=cross, locality_aware=local)

        total_demand = sum(m.demand for m in members)
        # Every demanded bit is either peer-served or server-served.
        assert allocation.server_bits + allocation.total_peer_bits == pytest.approx(
            total_demand, rel=1e-9, abs=1e-6
        )
        assert allocation.demanded_bits == pytest.approx(total_demand)
        # Uploads account exactly for peer bits.
        assert sum(allocation.uploaded_bits.values()) == pytest.approx(
            allocation.total_peer_bits, rel=1e-9, abs=1e-6
        )
        # Nothing is negative.
        assert allocation.server_bits >= -1e-9
        for bits in allocation.peer_bits.values():
            assert bits >= -1e-9

    @given(members=peer_states(max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_per_user_upload_caps(self, members):
        allocation = match_window(members)
        capacity_by_user = {}
        for m in members:
            capacity_by_user[m.user_id] = capacity_by_user.get(m.user_id, 0.0) + m.supply
        for user_id, uploaded in allocation.uploaded_bits.items():
            assert uploaded <= capacity_by_user[user_id] + 1e-6

    @given(members=peer_states(max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_isp_friendly_layers_only(self, members):
        """Without cross-ISP matching, no transit-layer peer bits exist."""
        allocation = match_window(members, allow_cross_isp=False)
        assert NetworkLayer.SERVER not in allocation.peer_bits

    @given(members=peer_states(max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_locality_blind_matches_volume(self, members):
        """Random matching never moves more than demand or supply allow."""
        allocation = match_window(members, locality_aware=False)
        total_supply = sum(m.supply for m in members)
        total_demand = sum(m.demand for m in members)
        assert allocation.total_peer_bits <= total_supply + 1e-6
        assert allocation.total_peer_bits <= total_demand + 1e-6
