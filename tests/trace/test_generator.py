"""Tests for the synthetic trace generator."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.diurnal import FLAT_PROFILE
from repro.trace.events import SECONDS_PER_DAY
from repro.trace.generator import (
    GeneratorConfig,
    TraceGenerator,
    generate_trace,
    sample_poisson,
)


SMALL = GeneratorConfig(
    num_users=800,
    num_items=100,
    days=3,
    expected_sessions=4_000,
    seed=11,
)


@pytest.fixture(scope="module")
def small_trace():
    return TraceGenerator(config=SMALL).generate()


class TestSamplePoisson:
    def test_zero_lambda(self):
        assert sample_poisson(random.Random(1), 0.0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sample_poisson(random.Random(1), -1.0)

    @pytest.mark.parametrize("lam", [0.5, 3.0, 25.0, 100.0, 5_000.0])
    def test_mean_and_variance(self, lam):
        rng = random.Random(42)
        n = 4_000
        draws = [sample_poisson(rng, lam) for _ in range(n)]
        mean = sum(draws) / n
        var = sum((d - mean) ** 2 for d in draws) / n
        assert mean == pytest.approx(lam, rel=0.1)
        assert var == pytest.approx(lam, rel=0.25)

    @given(lam=st.floats(min_value=0.0, max_value=500.0))
    @settings(max_examples=50)
    def test_nonnegative_int(self, lam):
        value = sample_poisson(random.Random(0), lam)
        assert isinstance(value, int)
        assert value >= 0


class TestGeneratorConfig:
    def test_horizon(self):
        assert SMALL.horizon == 3 * SECONDS_PER_DAY

    def test_scaled(self):
        big = GeneratorConfig(pinned_views={"hit": 100.0})
        half = big.scaled(0.5)
        assert half.num_users == big.num_users // 2
        assert half.expected_sessions == pytest.approx(big.expected_sessions / 2)
        assert half.pinned_views["hit"] == pytest.approx(50.0)
        assert half.days == big.days  # time axis untouched

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            SMALL.scaled(0.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_users": 0},
            {"num_items": 0},
            {"days": 0},
            {"expected_sessions": -1.0},
            {"completion_alpha": 0.0},
            {"min_session_seconds": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            GeneratorConfig(**kwargs)


class TestGeneratedTrace:
    def test_session_count_near_expectation(self, small_trace):
        # Poisson totals plus the min-duration filter: within ~10 %.
        assert len(small_trace) == pytest.approx(4_000, rel=0.1)

    def test_sessions_within_horizon(self, small_trace):
        assert all(s.start >= 0 for s in small_trace)
        assert all(s.end <= small_trace.horizon + 1e-6 for s in small_trace)

    def test_durations_respect_minimum(self, small_trace):
        assert all(s.duration >= SMALL.min_session_seconds for s in small_trace)

    def test_durations_bounded_by_longest_programme(self, small_trace):
        assert all(s.duration <= 5_400.0 + 1e-6 for s in small_trace)

    def test_bitrates_from_device_mix(self, small_trace):
        bitrates = {s.bitrate for s in small_trace}
        assert bitrates <= {0.8e6, 1.5e6, 3.0e6, 5.0e6}

    def test_users_come_from_population(self, small_trace):
        assert all(0 <= s.user_id < SMALL.num_users for s in small_trace)

    def test_user_attachment_consistent(self, small_trace):
        """A user keeps one attachment point across all their sessions."""
        seen = {}
        for s in small_trace:
            if s.user_id in seen:
                assert seen[s.user_id] == s.attachment
            else:
                seen[s.user_id] = s.attachment

    def test_popularity_skew_realised(self, small_trace):
        views = Counter(s.content_id for s in small_trace)
        top = views.most_common(1)[0][1]
        median = sorted(views.values())[len(views) // 2]
        assert top > 5 * median

    def test_deterministic(self):
        a = TraceGenerator(config=SMALL).generate()
        b = TraceGenerator(config=SMALL).generate()
        assert len(a) == len(b)
        assert a.sessions[:50] == b.sessions[:50]
        assert a.sessions[-1] == b.sessions[-1]

    def test_seed_changes_trace(self):
        other = TraceGenerator(config=GeneratorConfig(
            num_users=SMALL.num_users,
            num_items=SMALL.num_items,
            days=SMALL.days,
            expected_sessions=SMALL.expected_sessions,
            seed=99,
        )).generate()
        base = TraceGenerator(config=SMALL).generate()
        assert base.sessions[:20] != other.sessions[:20]

    def test_pinned_item_views(self):
        config = GeneratorConfig(
            num_users=500,
            num_items=20,
            days=2,
            expected_sessions=3_000,
            pinned_views={"exemplar": 1_000.0},
            seed=5,
        )
        trace = TraceGenerator(config=config).generate()
        views = Counter(s.content_id for s in trace)
        assert views["exemplar"] == pytest.approx(1_000, rel=0.15)

    def test_diurnal_shape_respected(self):
        trace = TraceGenerator(config=SMALL).generate()
        hours = Counter(int((s.start % SECONDS_PER_DAY) // 3600) for s in trace)
        assert hours[21] > 3 * max(hours[3], 1)

    def test_flat_profile_option(self):
        trace = TraceGenerator(config=SMALL, profile=FLAT_PROFILE).generate()
        hours = Counter(int((s.start % SECONDS_PER_DAY) // 3600) for s in trace)
        assert max(hours.values()) < 3 * min(hours.values())


class TestGenerateTraceHelper:
    def test_defaults_smoke(self):
        config = GeneratorConfig(
            num_users=200, num_items=20, days=1, expected_sessions=500, seed=1
        )
        trace = generate_trace(config)
        assert len(trace) > 300
        assert trace.num_days == 1


class TestIterSessions:
    def test_stream_equals_generated_trace(self):
        """iter_sessions is the lazy twin of generate(): identical
        sessions, identical order of RNG consumption."""
        gen = TraceGenerator(config=SMALL)
        streamed = list(gen.iter_sessions())
        materialized = TraceGenerator(config=SMALL).generate()
        assert sorted(streamed, key=lambda s: (s.start, s.session_id)) == list(
            materialized.sessions
        )

    def test_stream_is_lazy(self):
        gen = TraceGenerator(config=SMALL)
        iterator = gen.iter_sessions()
        first = next(iterator)
        assert first.session_id == 0

    def test_stream_is_restartable(self):
        gen = TraceGenerator(config=SMALL)
        assert list(gen.iter_sessions()) == list(gen.iter_sessions())


class TestAttachmentInterning:
    """The flyweight satellite: per-session attachments share identity.

    Attachment points are interned per (ISP, PoP, exchange) triple
    (repro.topology.nodes.intern_attachment), so a month-scale trace
    holds thousands of shared attachment objects instead of millions of
    duplicates -- without consuming any randomness (the RNG streams,
    and hence every generated session, are unchanged; the golden
    fixtures in tests/golden/ pin that down to the bit).
    """

    def test_generated_attachments_share_identity(self):
        trace = TraceGenerator(config=SMALL).generate()
        by_triple = {}
        for session in trace:
            a = session.attachment
            assert by_triple.setdefault((a.isp, a.pop, a.exchange), a) is a
        # Far fewer distinct objects than sessions: the point of the
        # flyweight.
        assert len({id(s.attachment) for s in trace}) == len(by_triple)
        assert len(by_triple) < len(trace)

    def test_interning_is_identity_stable(self):
        from repro.topology.nodes import AttachmentPoint, intern_attachment

        a = intern_attachment("ISP-1", 2, 30)
        b = intern_attachment("ISP-1", 2, 30)
        assert a is b
        assert a == AttachmentPoint(isp="ISP-1", pop=2, exchange=30)
        assert intern_attachment("ISP-2", 2, 30) is not a

    def test_rng_streams_unchanged_by_interning(self):
        """Interning consumes no randomness: two generators with the
        same seed still produce identical traces (the regression this
        satellite guards -- a cache that drew from an RNG would skew
        every downstream stream)."""
        first = TraceGenerator(config=SMALL).generate()
        second = TraceGenerator(config=SMALL).generate()
        assert first.sessions == second.sessions
