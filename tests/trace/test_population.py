"""Tests for the viewer population."""

import random
from collections import Counter

import pytest

from repro.topology.city import default_london
from repro.trace.population import (
    DEFAULT_DEVICE_MIX,
    DeviceProfile,
    Population,
    User,
)


class TestDeviceProfile:
    def test_default_mix_shares_sum_to_one(self):
        assert sum(d.share for d in DEFAULT_DEVICE_MIX) == pytest.approx(1.0)

    def test_modal_bitrate_is_1_5_mbps(self):
        """The paper's modal iPlayer bitrate is 1.5 Mbps."""
        by_bitrate = Counter()
        for device in DEFAULT_DEVICE_MIX:
            by_bitrate[device.bitrate] += device.share
        assert max(by_bitrate, key=by_bitrate.get) == pytest.approx(1.5e6)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": "", "bitrate": 1e6, "share": 0.5},
            {"name": "x", "bitrate": 0.0, "share": 0.5},
            {"name": "x", "bitrate": 1e6, "share": 0.0},
            {"name": "x", "bitrate": 1e6, "share": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DeviceProfile(**kwargs)


class TestPopulationGeneration:
    def test_size(self):
        pop = Population.generate(500, rng=random.Random(1))
        assert len(pop) == 500

    def test_user_ids_sequential_unique(self):
        pop = Population.generate(100, rng=random.Random(1))
        assert [u.user_id for u in pop] == list(range(100))

    def test_deterministic(self):
        a = Population.generate(50, rng=random.Random(3))
        b = Population.generate(50, rng=random.Random(3))
        assert a == b

    def test_isp_shares_respected(self):
        city = default_london()
        pop = Population.generate(10_000, city=city, rng=random.Random(2))
        counts = Counter(u.isp for u in pop)
        norm = city.normalised_shares()
        for isp, share in norm.items():
            assert counts[isp] / len(pop) == pytest.approx(share, rel=0.15)

    def test_device_mix_respected(self):
        pop = Population.generate(10_000, rng=random.Random(4))
        counts = Counter(u.device.name for u in pop)
        for device in DEFAULT_DEVICE_MIX:
            assert counts[device.name] / len(pop) == pytest.approx(device.share, rel=0.2)

    def test_activity_skew(self):
        """Log-normal activity: the top decile holds a large share."""
        pop = Population.generate(5_000, activity_sigma=1.0, rng=random.Random(5))
        weights = sorted(pop.activity_weights(), reverse=True)
        top_share = sum(weights[: len(weights) // 10]) / sum(weights)
        assert top_share > 0.3

    def test_zero_sigma_uniform_activity(self):
        pop = Population.generate(100, activity_sigma=0.0, rng=random.Random(6))
        assert all(u.activity == pytest.approx(1.0) for u in pop)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Population.generate(0)
        with pytest.raises(ValueError):
            Population.generate(10, device_mix=())
        with pytest.raises(ValueError):
            Population.generate(10, activity_sigma=-1.0)


class TestPopulationAccess:
    def test_get(self):
        pop = Population.generate(20, rng=random.Random(1))
        assert pop.get(7).user_id == 7

    def test_get_missing(self):
        pop = Population.generate(20, rng=random.Random(1))
        with pytest.raises(KeyError):
            pop.get(999)

    def test_by_isp_partitions(self):
        pop = Population.generate(200, rng=random.Random(1))
        groups = pop.by_isp()
        assert sum(len(g) for g in groups.values()) == len(pop)
        for isp, users in groups.items():
            assert all(u.isp == isp for u in users)

    def test_user_validation(self):
        attachment = default_london().isps[0].attachment(0)
        device = DEFAULT_DEVICE_MIX[0]
        with pytest.raises(ValueError):
            User(user_id=-1, attachment=attachment, device=device, activity=1.0)
        with pytest.raises(ValueError):
            User(user_id=0, attachment=attachment, device=device, activity=0.0)

    def test_duplicate_ids_rejected(self):
        attachment = default_london().isps[0].attachment(0)
        device = DEFAULT_DEVICE_MIX[0]
        user = User(user_id=0, attachment=attachment, device=device, activity=1.0)
        with pytest.raises(ValueError):
            Population(users=(user, user))
