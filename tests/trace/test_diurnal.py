"""Tests for the diurnal arrival profile."""

import random
from collections import Counter

import pytest

from repro.trace.diurnal import (
    DiurnalProfile,
    FLAT_PROFILE,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    UK_TV_PROFILE,
)


class TestValidation:
    def test_needs_24_weights(self):
        with pytest.raises(ValueError):
            DiurnalProfile(hourly=(1.0,) * 23)

    def test_rejects_negative_weight(self):
        weights = [1.0] * 24
        weights[3] = -0.1
        with pytest.raises(ValueError):
            DiurnalProfile(hourly=tuple(weights))

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            DiurnalProfile(hourly=(0.0,) * 24)

    def test_rejects_bad_weekend_multiplier(self):
        with pytest.raises(ValueError):
            DiurnalProfile(hourly=(1.0,) * 24, weekend_multiplier=0.0)


class TestIntensity:
    def test_uk_profile_peaks_in_evening(self):
        peak_hour = max(range(24), key=lambda h: UK_TV_PROFILE.intensity(h * SECONDS_PER_HOUR))
        assert 20 <= peak_hour <= 22

    def test_uk_profile_trough_in_small_hours(self):
        trough = min(range(24), key=lambda h: UK_TV_PROFILE.intensity(h * SECONDS_PER_HOUR))
        assert 2 <= trough <= 5

    def test_flat_profile_constant(self):
        values = {FLAT_PROFILE.intensity(h * SECONDS_PER_HOUR) for h in range(24)}
        assert values == {1.0}

    def test_weekend_multiplier_applied(self):
        profile = DiurnalProfile(hourly=(1.0,) * 24, weekend_multiplier=2.0)
        monday = profile.intensity(12 * SECONDS_PER_HOUR)
        saturday = profile.intensity(5 * SECONDS_PER_DAY + 12 * SECONDS_PER_HOUR)
        assert saturday == pytest.approx(2 * monday)

    def test_is_weekend(self):
        assert not UK_TV_PROFILE.is_weekend(0.0)  # Monday
        assert UK_TV_PROFILE.is_weekend(5 * SECONDS_PER_DAY)  # Saturday
        assert UK_TV_PROFILE.is_weekend(6 * SECONDS_PER_DAY + 100)  # Sunday
        assert not UK_TV_PROFILE.is_weekend(7 * SECONDS_PER_DAY)  # Monday again

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            UK_TV_PROFILE.intensity(-1.0)


class TestCumulative:
    def test_length(self):
        cumulative = FLAT_PROFILE.hourly_cumulative(SECONDS_PER_DAY)
        assert len(cumulative) == 25

    def test_monotone(self):
        cumulative = UK_TV_PROFILE.hourly_cumulative(2 * SECONDS_PER_DAY)
        assert cumulative == sorted(cumulative)

    def test_partial_hours_round_up(self):
        cumulative = FLAT_PROFILE.hourly_cumulative(90 * 60.0)  # 1.5 h
        assert len(cumulative) == 3

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            FLAT_PROFILE.hourly_cumulative(0.0)


class TestSampling:
    def test_count_and_range(self):
        rng = random.Random(1)
        times = UK_TV_PROFILE.sample_times(500, SECONDS_PER_DAY, rng)
        assert len(times) == 500
        assert all(0 <= t < SECONDS_PER_DAY for t in times)

    def test_zero_count(self):
        assert UK_TV_PROFILE.sample_times(0, SECONDS_PER_DAY, random.Random(1)) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            UK_TV_PROFILE.sample_times(-1, SECONDS_PER_DAY, random.Random(1))

    def test_evening_heavier_than_night(self):
        rng = random.Random(2)
        times = UK_TV_PROFILE.sample_times(20_000, SECONDS_PER_DAY, rng)
        hours = Counter(int(t // SECONDS_PER_HOUR) for t in times)
        assert hours[21] > 5 * max(hours[3], 1)

    def test_flat_profile_roughly_uniform(self):
        rng = random.Random(3)
        times = FLAT_PROFILE.sample_times(24_000, SECONDS_PER_DAY, rng)
        hours = Counter(int(t // SECONDS_PER_HOUR) for t in times)
        assert min(hours.values()) > 800  # expectation 1000 per hour
        assert max(hours.values()) < 1200

    def test_deterministic_with_seed(self):
        a = UK_TV_PROFILE.sample_times(10, SECONDS_PER_DAY, random.Random(7))
        b = UK_TV_PROFILE.sample_times(10, SECONDS_PER_DAY, random.Random(7))
        assert a == b

    def test_samples_match_intensity_distribution(self):
        """Empirical hour frequencies track the normalised intensities."""
        rng = random.Random(4)
        n = 50_000
        times = UK_TV_PROFILE.sample_times(n, SECONDS_PER_DAY, rng)
        hours = Counter(int(t // SECONDS_PER_HOUR) for t in times)
        total_weight = sum(UK_TV_PROFILE.hourly)
        for hour in (3, 12, 21):
            expected = UK_TV_PROFILE.hourly[hour] / total_weight
            assert hours[hour] / n == pytest.approx(expected, rel=0.15)
