"""Tests for the Zipf content catalogue."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.catalogue import Catalogue, ContentItem, zipf_weights


class TestZipfWeights:
    def test_normalised(self):
        assert sum(zipf_weights(100, 0.9)) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = zipf_weights(50, 1.0)
        assert weights == sorted(weights, reverse=True)

    def test_exponent_zero_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert all(w == pytest.approx(0.1) for w in weights)

    def test_ratio_follows_rank(self):
        weights = zipf_weights(10, 1.0)
        assert weights[0] / weights[1] == pytest.approx(2.0)
        assert weights[0] / weights[4] == pytest.approx(5.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(10, -0.5)

    @given(
        n=st.integers(min_value=1, max_value=500),
        s=st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=30)
    def test_properties(self, n, s):
        weights = zipf_weights(n, s)
        assert len(weights) == n
        assert sum(weights) == pytest.approx(1.0)
        assert all(w > 0 for w in weights)


class TestContentItem:
    def test_validation(self):
        with pytest.raises(ValueError):
            ContentItem("a", "A", duration=0.0, genre="drama", expected_views=1.0)
        with pytest.raises(ValueError):
            ContentItem("a", "A", duration=60.0, genre="drama", expected_views=-1.0)


class TestCatalogueGeneration:
    def test_size_and_mass(self):
        cat = Catalogue.generate(100, 10_000.0, rng=random.Random(1))
        assert len(cat) == 100
        assert cat.total_expected_views == pytest.approx(10_000.0)

    def test_sorted_by_popularity(self):
        cat = Catalogue.generate(50, 1_000.0, rng=random.Random(1))
        views = [item.expected_views for item in cat.items]
        assert views == sorted(views, reverse=True)

    def test_heavy_tail_shape(self):
        """A few popular items, many unpopular ones (paper Fig. 3 left)."""
        cat = Catalogue.generate(1000, 100_000.0, zipf_exponent=0.9, rng=random.Random(1))
        ranked = cat.by_popularity()
        top_10_share = sum(i.expected_views for i in ranked[:10]) / 100_000.0
        median = ranked[len(ranked) // 2].expected_views
        assert top_10_share > 0.2
        assert median < ranked[0].expected_views / 100

    def test_pinned_items(self):
        cat = Catalogue.generate(
            10,
            1_000.0,
            pinned_views={"hit": 500.0, "niche": 5.0},
            rng=random.Random(1),
        )
        assert cat.get("hit").expected_views == 500.0
        assert cat.get("niche").expected_views == 5.0
        assert cat.total_expected_views == pytest.approx(1_000.0)

    def test_pinned_items_can_exceed_budget(self):
        cat = Catalogue.generate(
            3, 100.0, pinned_views={"a": 150.0, "b": 10.0}, rng=random.Random(1)
        )
        # Zipf remainder clamps at zero; pinned mass is preserved.
        assert cat.get("a").expected_views == 150.0
        assert cat.total_expected_views == pytest.approx(160.0)

    def test_too_many_pinned_rejected(self):
        with pytest.raises(ValueError):
            Catalogue.generate(1, 10.0, pinned_views={"a": 1.0, "b": 1.0})

    def test_durations_from_tv_grid(self):
        cat = Catalogue.generate(200, 1_000.0, rng=random.Random(3))
        durations = {item.duration for item in cat}
        assert durations <= {1800.0, 2700.0, 3600.0, 5400.0}

    def test_deterministic_with_seed(self):
        a = Catalogue.generate(20, 100.0, rng=random.Random(9))
        b = Catalogue.generate(20, 100.0, rng=random.Random(9))
        assert a == b

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Catalogue.generate(0, 10.0)
        with pytest.raises(ValueError):
            Catalogue.generate(5, -1.0)


class TestCatalogueAccess:
    def test_get_by_id(self):
        cat = Catalogue.generate(5, 100.0, rng=random.Random(1))
        item = cat.items[2]
        assert cat.get(item.content_id) is item

    def test_get_missing(self):
        cat = Catalogue.generate(5, 100.0, rng=random.Random(1))
        with pytest.raises(KeyError):
            cat.get("nope")

    def test_duplicate_ids_rejected(self):
        item = ContentItem("dup", "X", duration=60.0, genre="news", expected_views=1.0)
        with pytest.raises(ValueError):
            Catalogue(items=(item, item))

    def test_empty_catalogue_rejected(self):
        with pytest.raises(ValueError):
            Catalogue(items=())


class TestPopularityTiers:
    def test_tier_ratios(self):
        """Tiers land near the paper's 100K/10K/1K ratios (1 : 0.1 : 0.01)."""
        cat = Catalogue.generate(2000, 200_000.0, zipf_exponent=0.9, rng=random.Random(1))
        tiers = cat.popularity_tiers()
        top = tiers["popular"].expected_views
        assert tiers["medium"].expected_views == pytest.approx(0.1 * top, rel=0.25)
        assert tiers["unpopular"].expected_views == pytest.approx(0.01 * top, rel=0.35)

    def test_popular_is_rank_one(self):
        cat = Catalogue.generate(100, 1_000.0, rng=random.Random(1))
        assert cat.popularity_tiers()["popular"] == cat.by_popularity()[0]
