"""Tests for the binary session store and external merge-sort."""

import os

import pytest

from repro.sim.policies import PAPER_POLICY
from repro.trace.events import Session
from repro.trace.generator import GeneratorConfig, TraceGenerator
from repro.trace.store import (
    RECORD_SIZE,
    Extent,
    ExternalSessionSorter,
    ShardManifest,
    StoreCorruptionError,
    StoreReader,
    StoreWriter,
    _TAIL,
    clear_reader_cache,
    evict_reader,
    shared_reader,
)


@pytest.fixture(scope="module")
def trace():
    config = GeneratorConfig(
        num_users=150, num_items=15, days=1, expected_sessions=600, seed=11
    )
    return TraceGenerator(config=config).generate()


def write_store(sessions, path, horizon=0.0):
    with StoreWriter(path, horizon=horizon) as writer:
        for session in sessions:
            writer.append(session)
    return path


class TestRoundTrip:
    def test_sessions_bit_for_bit(self, trace, tmp_path):
        path = write_store(trace, tmp_path / "t.store", horizon=trace.horizon)
        with StoreReader(path) as reader:
            loaded = list(reader.iter_sessions())
            assert reader.horizon == trace.horizon
        assert tuple(loaded) == trace.sessions

    def test_fixed_record_size(self, trace, tmp_path):
        path = write_store(trace, tmp_path / "t.store")
        header_and_records = 8 + len(trace) * RECORD_SIZE
        assert path.stat().st_size > header_and_records  # footer follows
        with StoreReader(path) as reader:
            assert len(reader) == len(trace)

    def test_empty_store(self, tmp_path):
        path = write_store([], tmp_path / "empty.store", horizon=86_400.0)
        with StoreReader(path) as reader:
            assert len(reader) == 0
            assert list(reader.iter_sessions()) == []
            assert reader.horizon == 86_400.0

    def test_attachments_interned_on_read(self, trace, tmp_path):
        path = write_store(trace, tmp_path / "t.store")
        with StoreReader(path) as reader:
            loaded = list(reader.iter_sessions())
        by_triple = {}
        for session in loaded:
            a = session.attachment
            triple = (a.isp, a.pop, a.exchange)
            assert by_triple.setdefault(triple, a) is a

    def test_writer_rejects_append_after_close(self, trace, tmp_path):
        writer = StoreWriter(tmp_path / "t.store")
        writer.close()
        with pytest.raises(RuntimeError):
            writer.append(trace.sessions[0])

    def test_writer_rejects_negative_horizon(self, tmp_path):
        with pytest.raises(ValueError):
            StoreWriter(tmp_path / "t.store", horizon=-1.0)


class TestReadRange:
    def test_range_matches_slice(self, trace, tmp_path):
        path = write_store(trace, tmp_path / "t.store")
        with StoreReader(path) as reader:
            assert tuple(reader.read_range(5, 17)) == trace.sessions[5:22]
            assert reader.read_range(0, 0) == []

    def test_out_of_bounds_rejected(self, trace, tmp_path):
        path = write_store(trace, tmp_path / "t.store")
        with StoreReader(path) as reader:
            with pytest.raises(ValueError):
                reader.read_range(0, len(trace) + 1)
            with pytest.raises(ValueError):
                reader.read_range(-1, 1)


class TestCorruption:
    def test_not_a_store(self, tmp_path):
        path = tmp_path / "junk.store"
        path.write_bytes(b"definitely not a session store, not even close")
        with pytest.raises(ValueError, match="magic"):
            StoreReader(path)

    def test_truncated(self, tmp_path):
        path = tmp_path / "tiny.store"
        path.write_bytes(b"RPSS")
        with pytest.raises(ValueError, match="truncated"):
            StoreReader(path)

    def test_corruption_error_is_a_value_error(self):
        """Existing ``except ValueError`` call sites keep working."""
        assert issubclass(StoreCorruptionError, ValueError)

    def test_record_region_shorter_than_footer_promises(self, trace, tmp_path):
        """A store missing records fails at open, not with silent short data.

        Drop the first record and repoint the tail at the (now earlier)
        footer: every structural field still parses, but the record
        region no longer holds the count the footer promises -- the
        exact corruption the old masking decode slipped past.
        """
        path = write_store(trace.sessions[:10], tmp_path / "whole.store")
        raw = path.read_bytes()
        footer_offset, magic = _TAIL.unpack(raw[-_TAIL.size :])
        corrupt = (
            raw[:8]
            + raw[8 + RECORD_SIZE : footer_offset]
            + raw[footer_offset : -_TAIL.size]
            + _TAIL.pack(footer_offset - RECORD_SIZE, magic)
        )
        bad = tmp_path / "bad.store"
        bad.write_bytes(corrupt)
        with pytest.raises(StoreCorruptionError, match="promises"):
            StoreReader(bad)

    def test_short_read_after_truncation(self, trace, tmp_path):
        """A store truncated underneath an open reader raises, loudly."""
        path = write_store(trace.sessions[:10], tmp_path / "t.store")
        with StoreReader(path) as reader:
            os.truncate(path, 8 + 5 * RECORD_SIZE)
            with pytest.raises(StoreCorruptionError, match="short read"):
                reader.read_raw_range(0, 10)


class TestRawAndColumnReads:
    def test_raw_range_is_the_exact_record_bytes(self, trace, tmp_path):
        path = write_store(trace, tmp_path / "t.store")
        raw = path.read_bytes()
        with StoreReader(path) as reader:
            assert reader.read_raw_range(3, 4) == raw[
                8 + 3 * RECORD_SIZE : 8 + 7 * RECORD_SIZE
            ]
            assert reader.read_raw_range(0, 0) == b""

    def test_raw_range_bounds_checked(self, trace, tmp_path):
        path = write_store(trace, tmp_path / "t.store")
        with StoreReader(path) as reader:
            with pytest.raises(ValueError):
                reader.read_raw_range(0, len(trace) + 1)
            with pytest.raises(ValueError):
                reader.read_raw_range(-1, 1)

    def test_columns_match_decoded_sessions(self, trace, tmp_path):
        path = write_store(trace, tmp_path / "t.store")
        with StoreReader(path) as reader:
            sessions = reader.read_range(5, 17)
            columns = reader.read_columns(5, 17)
        assert columns.count == 17
        for i, session in enumerate(sessions):
            assert columns.session_ids[i] == session.session_id
            assert columns.user_ids[i] == session.user_id
            assert (
                columns.content_table[columns.content_refs[i]]
                == session.content_id
            )
            assert columns.starts[i] == session.start
            assert columns.durations[i] == session.duration
            assert columns.bitrates[i] == session.bitrate
            attachment = session.attachment
            assert columns.isp_table[columns.isp_refs[i]] == attachment.isp
            assert columns.pops[i] == attachment.pop
            assert columns.exchanges[i] == attachment.exchange
            assert (
                columns.device_table[columns.device_refs[i]] == session.device
            )

    def test_empty_column_read(self, trace, tmp_path):
        path = write_store(trace, tmp_path / "t.store")
        with StoreReader(path) as reader:
            columns = reader.read_columns(4, 0)
        assert columns.count == 0
        assert len(columns.starts) == 0
        assert len(columns.session_ids) == 0


class TestSharedReaderCache:
    def test_same_instance_until_evicted(self, trace, tmp_path):
        path = write_store(trace, tmp_path / "t.store")
        try:
            first = shared_reader(path)
            assert shared_reader(path) is first
            evict_reader(path)
            second = shared_reader(path)
            assert second is not first
        finally:
            clear_reader_cache()

    def test_clear_cache(self, trace, tmp_path):
        path = write_store(trace, tmp_path / "t.store")
        reader = shared_reader(path)
        clear_reader_cache()
        assert shared_reader(path) is not reader
        clear_reader_cache()

    def test_cache_is_bounded_lru(self, trace, tmp_path):
        """Persistent pool workers see a fresh shard per run: the cache
        must close least-recently-used readers instead of pinning one
        open fd per run forever."""
        from repro.trace.store import _READER_CACHE, _READER_CACHE_MAX

        clear_reader_cache()
        try:
            readers = []
            for i in range(_READER_CACHE_MAX + 3):
                path = write_store(trace.sessions[:5], tmp_path / f"s{i}.store")
                readers.append(shared_reader(path))
            assert len(_READER_CACHE) == _READER_CACHE_MAX
            # The overflow evicted the oldest readers and closed them.
            assert all(r._closed for r in readers[:3])
            assert not readers[-1]._closed
            # A cache hit refreshes recency: touching the oldest
            # survivor keeps it alive through the next eviction.
            survivor = readers[3]
            assert shared_reader(survivor.path) is survivor
            extra = write_store(trace.sessions[:5], tmp_path / "extra.store")
            shared_reader(extra)
            assert not survivor._closed
        finally:
            clear_reader_cache()


class TestManifest:
    def test_extent_geometry(self):
        extent = Extent(key="k", index=3, count=7)
        assert extent.offset == 8 + 3 * RECORD_SIZE
        assert extent.length == 7 * RECORD_SIZE

    def test_iter_groups_round_trip(self, trace, tmp_path):
        # Sort by the paper policy's swarm key and cut extents by key.
        keyed = sorted(
            trace.sessions,
            key=lambda s: (
                PAPER_POLICY.key_for(s).sort_key(),
                s.start,
                s.session_id,
            ),
        )
        path = write_store(keyed, tmp_path / "sorted.store", trace.horizon)
        extents = []
        start = 0
        for i in range(1, len(keyed) + 1):
            if i == len(keyed) or PAPER_POLICY.key_for(keyed[i]) != PAPER_POLICY.key_for(
                keyed[start]
            ):
                extents.append(
                    Extent(
                        key=PAPER_POLICY.key_for(keyed[start]),
                        index=start,
                        count=i - start,
                    )
                )
                start = i
        manifest = ShardManifest(
            path=str(path), horizon=trace.horizon, extents=tuple(extents)
        )
        try:
            assert manifest.num_sessions == len(trace)
            rebuilt = []
            for key, sessions in manifest.iter_groups():
                assert all(PAPER_POLICY.key_for(s) == key for s in sessions)
                rebuilt.extend(sessions)
            assert rebuilt == keyed
        finally:
            evict_reader(path)


class TestExternalSorter:
    def sort_key(self, session: Session):
        return (
            PAPER_POLICY.key_for(session).sort_key(),
            session.start,
            session.session_id,
        )

    def test_sorted_output_with_spilling(self, trace, tmp_path):
        sorter = ExternalSessionSorter(self.sort_key, tmp_path, run_sessions=50)
        sorter.extend(trace.sessions)
        merged = list(sorter.finish())
        assert merged == sorted(trace.sessions, key=self.sort_key)
        stats = sorter.stats
        assert stats.sessions == len(trace)
        assert stats.runs_spilled == len(trace) // 50
        assert stats.peak_buffered <= 50
        # Run files are removed once the merge completes.
        assert list(tmp_path.glob("run-*.store")) == []

    def test_no_spill_when_buffer_fits(self, trace, tmp_path):
        sorter = ExternalSessionSorter(self.sort_key, tmp_path, run_sessions=10**6)
        sorter.extend(trace.sessions)
        merged = list(sorter.finish())
        assert merged == sorted(trace.sessions, key=self.sort_key)
        assert sorter.stats.runs_spilled == 0

    def test_order_independent_of_input_permutation(self, trace, tmp_path):
        forward = ExternalSessionSorter(self.sort_key, tmp_path / "a", run_sessions=64)
        forward.extend(trace.sessions)
        backward = ExternalSessionSorter(self.sort_key, tmp_path / "b", run_sessions=64)
        backward.extend(reversed(trace.sessions))
        assert list(forward.finish()) == list(backward.finish())

    def test_add_after_finish_rejected(self, trace, tmp_path):
        sorter = ExternalSessionSorter(self.sort_key, tmp_path, run_sessions=10)
        sorter.add(trace.sessions[0])
        list(sorter.finish())
        with pytest.raises(RuntimeError):
            sorter.add(trace.sessions[1])
        with pytest.raises(RuntimeError):
            list(sorter.finish())

    def test_rejects_bad_run_sessions(self, tmp_path):
        with pytest.raises(ValueError):
            ExternalSessionSorter(self.sort_key, tmp_path, run_sessions=0)
