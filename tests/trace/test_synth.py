"""Determinism laws for the generative city synthesizer.

The contract (:mod:`repro.trace.synth`): synthesis is a pure function
of ``SynthConfig`` -- same (seed, params) means a **byte-identical**
store file and an equal ``trace_fingerprint`` of the sessions read
back, while changing *any single field* changes
``SynthConfig.fingerprint()``.  The first half is what makes the shard
cache and the reuse sidecar sound; the second is what keys them.
``hypothesis`` is an optional dependency: the law-based tests skip
when it is missing.
"""

from dataclasses import fields, replace

import pytest

from repro.trace.store import StoreReader, trace_fingerprint
from repro.trace.synth import SynthConfig, ensure_store, synthesize


def tiny(**overrides) -> SynthConfig:
    """A fast-to-synthesize config with every feature switched on."""
    base = dict(
        region="east",
        seed=7,
        days=2,
        users=40,
        catalogue_size=12,
        sessions_per_user_day=1.5,
        popularity_drift=0.4,
        catalogue_churn=0.5,
        num_isps=2,
        num_exchanges=6,
        num_pops=2,
    )
    base.update(overrides)
    return SynthConfig(**base)


#: One representative perturbation per config field -- a new field added
#: to SynthConfig without a row here fails test_every_field_perturbed.
PERTURBATIONS = {
    "region": {"region": "west"},
    "seed": {"seed": 8},
    "days": {"days": 3},
    "users": {"users": 41},
    "catalogue_size": {"catalogue_size": 13},
    "sessions_per_user_day": {"sessions_per_user_day": 1.6},
    "zipf_exponent": {"zipf_exponent": 1.0},
    "popularity_drift": {"popularity_drift": 0.5},
    "catalogue_churn": {"catalogue_churn": 0.6},
    "peak_hour": {"peak_hour": 21.0},
    "diurnal_strength": {"diurnal_strength": 0.6},
    "weekend_multiplier": {"weekend_multiplier": 1.2},
    "num_isps": {"num_isps": 3},
    "isp_skew": {"isp_skew": 1.1},
    "num_exchanges": {"num_exchanges": 7},
    "num_pops": {"num_pops": 3},
    "exchange_skew": {"exchange_skew": 0.7},
    "user_activity_skew": {"user_activity_skew": 0.6},
    "mean_duration": {"mean_duration": 1600.0},
    "duration_sigma": {"duration_sigma": 0.6},
    "catalogue_prefix": {"catalogue_prefix": "shared"},
}


def test_every_field_perturbed():
    assert sorted(PERTURBATIONS) == sorted(
        f.name for f in fields(SynthConfig)
    ), "add a perturbation for every new SynthConfig field"


def test_same_config_byte_identical(tmp_path):
    config = tiny()
    a = synthesize(config, tmp_path / "a.store")
    b = synthesize(config, tmp_path / "b.store")
    assert not a.reused and not b.reused
    assert (tmp_path / "a.store").read_bytes() == (
        tmp_path / "b.store"
    ).read_bytes()
    with StoreReader(a.path) as reader:
        fp_a = trace_fingerprint(reader.iter_sessions())
    with StoreReader(b.path) as reader:
        fp_b = trace_fingerprint(reader.iter_sessions())
    assert fp_a == fp_b


@pytest.mark.parametrize("field", sorted(PERTURBATIONS))
def test_single_field_change_alters_fingerprint(field):
    config = tiny()
    changed = replace(config, **PERTURBATIONS[field])
    assert changed != config, field
    assert changed.fingerprint() != config.fingerprint(), field


def test_sidecar_reuse_and_force(tmp_path):
    config = tiny()
    first = synthesize(config, tmp_path / "c.store")
    again = synthesize(config, tmp_path / "c.store")
    assert not first.reused and again.reused
    assert again.sessions == first.sessions
    assert again.fingerprint == first.fingerprint
    forced = synthesize(config, tmp_path / "c.store", force=True)
    assert not forced.reused
    # A changed config at the same path regenerates (fingerprint miss).
    other = synthesize(replace(config, seed=99), tmp_path / "c.store")
    assert not other.reused


def test_ensure_store_content_addressed(tmp_path):
    config = tiny()
    first = ensure_store(config, tmp_path)
    second = ensure_store(config, tmp_path)
    assert first.path == second.path
    assert not first.reused and second.reused
    assert config.fingerprint()[:16] in first.path.name
    other = ensure_store(replace(config, seed=99), tmp_path)
    assert other.path != first.path


def test_store_is_simulatable(tmp_path):
    """The synthesized store round-trips into a real simulation."""
    from repro.sim import SimulationConfig, Simulator

    config = tiny()
    result = synthesize(config, tmp_path / "sim.store")
    with StoreReader(result.path) as reader:
        assert reader.horizon == config.horizon
        assert len(reader) == result.sessions
        sim = Simulator(SimulationConfig()).run_stream(
            reader.iter_sessions(), reader.horizon
        )
    assert sim.total.sessions == result.sessions
    assert sim.total.demanded_bits > 0


# ----------------------------------------------------------------------
# Hypothesis law: determinism over the whole parameter space
# ----------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

LAW = settings(
    max_examples=15,  # each example synthesizes two full stores
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_configs = st.builds(
    SynthConfig,
    region=st.sampled_from(["east", "west", "metro_9"]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    days=st.integers(min_value=1, max_value=3),
    users=st.integers(min_value=1, max_value=60),
    catalogue_size=st.integers(min_value=1, max_value=20),
    sessions_per_user_day=st.floats(min_value=0.2, max_value=3.0),
    zipf_exponent=st.floats(min_value=0.0, max_value=2.0),
    popularity_drift=st.floats(min_value=0.0, max_value=1.0),
    catalogue_churn=st.floats(min_value=0.0, max_value=1.0),
    peak_hour=st.floats(min_value=0.0, max_value=23.5),
    diurnal_strength=st.floats(min_value=0.0, max_value=1.0),
    num_isps=st.integers(min_value=1, max_value=4),
    num_exchanges=st.integers(min_value=1, max_value=8),
    num_pops=st.integers(min_value=1, max_value=4),
    duration_sigma=st.floats(min_value=0.0, max_value=1.5),
)


@LAW
@given(config=_configs)
def test_law_synthesis_is_deterministic(tmp_path_factory, config):
    tmp_path = tmp_path_factory.mktemp("synthlaw")
    a = synthesize(config, tmp_path / "a.store")
    b = synthesize(config, tmp_path / "b.store")
    bytes_a = a.path.read_bytes()
    bytes_b = b.path.read_bytes()
    assert bytes_a == bytes_b
    with StoreReader(a.path) as reader:
        fp_a = trace_fingerprint(reader.iter_sessions())
    with StoreReader(b.path) as reader:
        fp_b = trace_fingerprint(reader.iter_sessions())
    assert fp_a == fp_b
