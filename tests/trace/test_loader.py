"""Tests for trace persistence (JSONL / CSV round-trips)."""

import json
import threading
import time

import pytest

from repro.trace.generator import GeneratorConfig, TraceGenerator
from repro.trace.loader import (
    append_jsonl_end,
    follow_jsonl,
    iter_csv,
    iter_jsonl,
    iter_store,
    load_csv,
    load_jsonl,
    load_store,
    read_jsonl_horizon,
    save_csv,
    save_jsonl,
    save_store,
    session_from_record,
    session_to_record,
)


@pytest.fixture(scope="module")
def trace():
    config = GeneratorConfig(
        num_users=150, num_items=15, days=1, expected_sessions=400, seed=3
    )
    return TraceGenerator(config=config).generate()


class TestRecordRoundTrip:
    def test_round_trip(self, trace):
        session = trace.sessions[0]
        rebuilt = session_from_record(session_to_record(session))
        assert rebuilt == session

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            session_from_record({"session_id": 1})

    def test_device_defaults_to_unknown(self, trace):
        record = session_to_record(trace.sessions[0])
        del record["device"]
        assert session_from_record(record).device == "unknown"


class TestJsonl:
    def test_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        loaded = load_jsonl(path)
        assert loaded.sessions == trace.sessions
        assert loaded.horizon == trace.horizon

    def test_header_first_line(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        first = json.loads(path.read_text().splitlines()[0])
        assert first["kind"] == "trace-header"
        assert first["horizon"] == trace.horizon

    def test_blank_lines_tolerated(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_jsonl(path)) == len(trace)

    def test_corrupt_record_reports_line(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        del record["bitrate"]
        lines[1] = json.dumps(record)
        path.write_text("\n".join(lines))
        with pytest.raises(ValueError, match=":2:"):
            load_jsonl(path)


class TestStreamingLoaders:
    """iter_* yield the same sessions the load_* Traces hold, lazily."""

    def test_iter_jsonl_matches_load(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        assert tuple(iter_jsonl(path)) == trace.sessions

    def test_iter_jsonl_is_lazy(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        stream = iter_jsonl(path)
        first = next(stream)
        assert first == trace.sessions[0]
        stream.close()  # a partially consumed stream closes cleanly

    def test_iter_jsonl_reports_corrupt_line(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        del record["duration"]
        lines[1] = json.dumps(record)
        path.write_text("\n".join(lines))
        with pytest.raises(ValueError, match=":2:"):
            list(iter_jsonl(path))

    def test_read_jsonl_horizon(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        assert read_jsonl_horizon(path) == trace.horizon

    def test_read_jsonl_horizon_headerless(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        # Strip the header: external traces may not carry one.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[1:]))
        assert read_jsonl_horizon(path) == 0.0
        assert tuple(iter_jsonl(path)) == trace.sessions

    def test_iter_csv_matches_load(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        save_csv(trace, path)
        assert tuple(iter_csv(path)) == trace.sessions

    def test_streamed_simulation_equals_materialized(self, trace, tmp_path):
        """The loaders' reason to exist: file -> run_stream, no Trace."""
        from repro.sim import SimulationConfig, Simulator, simulate

        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        result = Simulator(SimulationConfig()).run_stream(
            iter_jsonl(path), read_jsonl_horizon(path)
        )
        assert simulate(trace).identical_to(result)

    def test_loaded_attachments_are_interned(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        by_triple = {}
        for session in iter_jsonl(path):
            a = session.attachment
            assert by_triple.setdefault((a.isp, a.pop, a.exchange), a) is a


class TestPartialTail:
    """A feed read mid-write has a truncated final record."""

    def _torn(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        raw = path.read_text()
        # Chop the last record mid-line: the writer hasn't finished it.
        path.write_text(raw[: raw.rfind("\n", 0, len(raw) - 1) + 1 + 20])
        return path

    def test_strict_reader_crashes(self, trace, tmp_path):
        path = self._torn(trace, tmp_path)
        with pytest.raises(json.JSONDecodeError):
            list(iter_jsonl(path))

    def test_tolerant_reader_skips_the_tail(self, trace, tmp_path):
        path = self._torn(trace, tmp_path)
        sessions = tuple(iter_jsonl(path, allow_partial_tail=True))
        assert sessions == trace.sessions[:-1]

    def test_tolerant_reader_picks_the_record_up_once_complete(
        self, trace, tmp_path
    ):
        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        raw = path.read_text()
        cut = raw.rfind("\n", 0, len(raw) - 1) + 1 + 20
        path.write_text(raw[:cut])
        assert len(tuple(iter_jsonl(path, allow_partial_tail=True))) == (
            len(trace) - 1
        )
        path.write_text(raw)  # the writer finished the line
        assert tuple(iter_jsonl(path, allow_partial_tail=True)) == trace.sessions

    def test_complete_but_corrupt_line_still_raises(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        del record["bitrate"]
        lines[1] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=":2:"):
            list(iter_jsonl(path, allow_partial_tail=True))


class TestFollowJsonl:
    """The polling tail reader behind service mode."""

    def test_follows_a_terminated_feed(self, trace, tmp_path):
        path = tmp_path / "feed.jsonl"
        save_jsonl(trace, path)
        append_jsonl_end(path)
        sessions = tuple(follow_jsonl(path, poll_interval=0.01))
        assert sessions == trace.sessions

    def test_end_marker_is_invisible_to_plain_readers(self, trace, tmp_path):
        path = tmp_path / "feed.jsonl"
        save_jsonl(trace, path)
        append_jsonl_end(path)
        assert tuple(iter_jsonl(path)) == trace.sessions

    def test_start_record_skips_the_cursor_prefix(self, trace, tmp_path):
        path = tmp_path / "feed.jsonl"
        save_jsonl(trace, path)
        append_jsonl_end(path)
        tail = tuple(follow_jsonl(path, poll_interval=0.01, start_record=5))
        assert tail == trace.sessions[5:]

    def test_idle_timeout_ends_a_quiet_feed(self, trace, tmp_path):
        path = tmp_path / "feed.jsonl"
        save_jsonl(trace, path)  # no end marker: the feed just goes quiet
        sessions = tuple(
            follow_jsonl(path, poll_interval=0.01, idle_timeout=0.05)
        )
        assert sessions == trace.sessions

    def test_stop_callback_ends_the_follow(self, trace, tmp_path):
        path = tmp_path / "feed.jsonl"
        save_jsonl(trace, path)
        sessions = tuple(
            follow_jsonl(path, poll_interval=0.01, stop=lambda: True)
        )
        assert sessions == trace.sessions

    def test_waits_out_a_mid_write_record(self, trace, tmp_path):
        """A half-written line is re-polled, never parsed or dropped."""
        path = tmp_path / "feed.jsonl"
        save_jsonl(trace, path)
        raw = path.read_text()
        cut = raw.rfind("\n", 0, len(raw) - 1) + 1 + 20
        path.write_text(raw[:cut])  # torn tail: writer mid-record

        def finish_the_write():
            time.sleep(0.05)
            with path.open("a", encoding="utf-8") as handle:
                handle.write(raw[cut:])
            append_jsonl_end(path)

        writer = threading.Thread(target=finish_the_write)
        writer.start()
        try:
            sessions = tuple(follow_jsonl(path, poll_interval=0.01))
        finally:
            writer.join()
        assert sessions == trace.sessions


class TestBinaryStore:
    def test_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.store"
        save_store(trace, path)
        loaded = load_store(path)
        assert loaded.sessions == trace.sessions
        assert loaded.horizon == trace.horizon

    def test_iter_store_matches(self, trace, tmp_path):
        path = tmp_path / "trace.store"
        save_store(trace, path)
        assert tuple(iter_store(path)) == trace.sessions

    def test_store_smaller_than_jsonl(self, trace, tmp_path):
        jsonl = tmp_path / "trace.jsonl"
        store = tmp_path / "trace.store"
        save_jsonl(trace, jsonl)
        save_store(trace, store)
        assert store.stat().st_size < jsonl.stat().st_size / 3

    def test_empty_trace_round_trip(self, tmp_path):
        from repro.trace.events import Trace

        path = tmp_path / "empty.store"
        save_store(Trace.from_sessions([]), path)
        assert len(load_store(path)) == 0


class TestCsv:
    def test_round_trip_sessions(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        save_csv(trace, path)
        loaded = load_csv(path, horizon=trace.horizon)
        assert loaded.sessions == trace.sessions
        assert loaded.horizon == trace.horizon

    def test_horizon_rederived_without_hint(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        save_csv(trace, path)
        loaded = load_csv(path)
        assert loaded.horizon >= max(s.end for s in trace)

    def test_empty_trace_round_trip(self, tmp_path):
        from repro.trace.events import Trace

        path = tmp_path / "empty.csv"
        save_csv(Trace.from_sessions([]), path)
        assert len(load_csv(path)) == 0
