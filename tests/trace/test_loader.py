"""Tests for trace persistence (JSONL / CSV round-trips)."""

import json

import pytest

from repro.trace.generator import GeneratorConfig, TraceGenerator
from repro.trace.loader import (
    load_csv,
    load_jsonl,
    save_csv,
    save_jsonl,
    session_from_record,
    session_to_record,
)


@pytest.fixture(scope="module")
def trace():
    config = GeneratorConfig(
        num_users=150, num_items=15, days=1, expected_sessions=400, seed=3
    )
    return TraceGenerator(config=config).generate()


class TestRecordRoundTrip:
    def test_round_trip(self, trace):
        session = trace.sessions[0]
        rebuilt = session_from_record(session_to_record(session))
        assert rebuilt == session

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            session_from_record({"session_id": 1})

    def test_device_defaults_to_unknown(self, trace):
        record = session_to_record(trace.sessions[0])
        del record["device"]
        assert session_from_record(record).device == "unknown"


class TestJsonl:
    def test_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        loaded = load_jsonl(path)
        assert loaded.sessions == trace.sessions
        assert loaded.horizon == trace.horizon

    def test_header_first_line(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        first = json.loads(path.read_text().splitlines()[0])
        assert first["kind"] == "trace-header"
        assert first["horizon"] == trace.horizon

    def test_blank_lines_tolerated(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_jsonl(path)) == len(trace)

    def test_corrupt_record_reports_line(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        del record["bitrate"]
        lines[1] = json.dumps(record)
        path.write_text("\n".join(lines))
        with pytest.raises(ValueError, match=":2:"):
            load_jsonl(path)


class TestCsv:
    def test_round_trip_sessions(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        save_csv(trace, path)
        loaded = load_csv(path, horizon=trace.horizon)
        assert loaded.sessions == trace.sessions
        assert loaded.horizon == trace.horizon

    def test_horizon_rederived_without_hint(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        save_csv(trace, path)
        loaded = load_csv(path)
        assert loaded.horizon >= max(s.end for s in trace)

    def test_empty_trace_round_trip(self, tmp_path):
        from repro.trace.events import Trace

        path = tmp_path / "empty.csv"
        save_csv(Trace.from_sessions([]), path)
        assert len(load_csv(path)) == 0
