"""Tests for trace summary statistics (Table I)."""

import pytest

from repro.topology.nodes import AttachmentPoint
from repro.trace.events import SECONDS_PER_DAY, Session, Trace
from repro.trace.generator import GeneratorConfig, TraceGenerator
from repro.trace.stats import USERS_PER_IP, TraceStats, summarise


def make_session(session_id, user_id, content_id="item-a", start=0.0, duration=3600.0):
    return Session(
        session_id=session_id,
        user_id=user_id,
        content_id=content_id,
        start=start,
        duration=duration,
        bitrate=1.5e6,
        attachment=AttachmentPoint(isp="ISP-1", pop=0, exchange=0),
    )


class TestSummarise:
    def test_counts(self):
        trace = Trace.from_sessions(
            [
                make_session(0, user_id=1),
                make_session(1, user_id=1, content_id="item-b"),
                make_session(2, user_id=2),
            ]
        )
        stats = summarise(trace)
        assert stats.num_users == 2
        assert stats.num_sessions == 3
        assert stats.num_items == 2

    def test_ip_estimate_uses_nat_ratio(self):
        trace = Trace.from_sessions([make_session(i, user_id=i) for i in range(22)])
        stats = summarise(trace)
        assert stats.num_ip_addresses == round(22 / USERS_PER_IP)

    def test_hours_and_session_length(self):
        trace = Trace.from_sessions(
            [make_session(0, user_id=1, duration=1800.0), make_session(1, user_id=2, duration=5400.0)]
        )
        stats = summarise(trace)
        assert stats.total_hours_watched == pytest.approx(2.0)
        assert stats.mean_session_minutes == pytest.approx(60.0)

    def test_empty_trace(self):
        stats = summarise(Trace.from_sessions([]))
        assert stats.num_users == 0
        assert stats.num_sessions == 0
        assert stats.mean_session_minutes == 0.0
        assert stats.sessions_per_user_top_decile_share == 0.0

    def test_top_decile_share(self):
        # 10 users; user 0 has 91 sessions, others 1 each.
        sessions = [make_session(i, user_id=0) for i in range(91)]
        sessions += [make_session(91 + u, user_id=u) for u in range(1, 10)]
        stats = summarise(Trace.from_sessions(sessions))
        assert stats.sessions_per_user_top_decile_share == pytest.approx(0.91)

    def test_mean_concurrency(self):
        trace = Trace.from_sessions(
            [make_session(0, user_id=1, duration=SECONDS_PER_DAY / 2)],
            horizon=SECONDS_PER_DAY,
        )
        assert summarise(trace).mean_concurrency == pytest.approx(0.5)


class TestTableRows:
    def test_rows_render(self):
        config = GeneratorConfig(
            num_users=300, num_items=30, days=1, expected_sessions=700, seed=8
        )
        stats = summarise(TraceGenerator(config=config).generate())
        rows = dict(stats.table_rows())
        assert "Number of Users" in rows
        assert "Number of Sessions" in rows
        assert rows["Days covered"] == "1"

    def test_millions_formatting(self):
        stats = TraceStats(
            num_users=3_300_000,
            num_ip_addresses=1_500_000,
            num_sessions=23_500_000,
            num_items=1000,
            days=30,
            total_hours_watched=1e6,
            mean_session_minutes=30.0,
            mean_concurrency=10_000.0,
            sessions_per_user_top_decile_share=0.5,
        )
        rows = dict(stats.table_rows())
        # The paper's Sep 2013 column: 3.3M users, 1.5M IPs, 23.5M sessions.
        assert rows["Number of Users"] == "3.3M"
        assert rows["Number of IP addresses"] == "1.5M"
        assert rows["Number of Sessions"] == "23.5M"
