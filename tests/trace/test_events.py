"""Tests for Session and Trace data model."""

import pytest

from repro.topology.nodes import AttachmentPoint
from repro.trace.events import SECONDS_PER_DAY, Session, Trace


def make_session(
    session_id=0,
    user_id=1,
    content_id="item-a",
    start=0.0,
    duration=600.0,
    bitrate=1.5e6,
    isp="ISP-1",
    pop=0,
    exchange=0,
    device="desktop",
):
    return Session(
        session_id=session_id,
        user_id=user_id,
        content_id=content_id,
        start=start,
        duration=duration,
        bitrate=bitrate,
        attachment=AttachmentPoint(isp=isp, pop=pop, exchange=exchange),
        device=device,
    )


class TestSession:
    def test_derived_fields(self):
        s = make_session(start=100.0, duration=50.0, bitrate=2e6)
        assert s.end == 150.0
        assert s.bits_watched == pytest.approx(1e8)
        assert s.isp == "ISP-1"

    def test_day_of_trace(self):
        assert make_session(start=0.0).day == 0
        assert make_session(start=SECONDS_PER_DAY - 1).day == 0
        assert make_session(start=SECONDS_PER_DAY).day == 1
        assert make_session(start=2.5 * SECONDS_PER_DAY).day == 2

    def test_overlaps(self):
        s = make_session(start=100.0, duration=100.0)
        assert s.overlaps(150.0, 160.0)
        assert s.overlaps(0.0, 101.0)
        assert s.overlaps(199.0, 300.0)
        assert not s.overlaps(200.0, 300.0)  # half-open interval
        assert not s.overlaps(0.0, 100.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"start": -1.0},
            {"duration": 0.0},
            {"duration": -5.0},
            {"bitrate": 0.0},
            {"content_id": ""},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            make_session(**kwargs)

    def test_immutable(self):
        s = make_session()
        with pytest.raises(AttributeError):
            s.start = 5.0


class TestTrace:
    def test_sessions_sorted_by_start(self):
        trace = Trace.from_sessions(
            [make_session(session_id=i, start=t) for i, t in enumerate([50.0, 10.0, 30.0])]
        )
        assert [s.start for s in trace] == [10.0, 30.0, 50.0]

    def test_horizon_rounds_up_to_days(self):
        trace = Trace.from_sessions([make_session(start=0.0, duration=90_000.0)])
        assert trace.horizon == 2 * SECONDS_PER_DAY
        assert trace.num_days == 2

    def test_explicit_horizon_kept(self):
        trace = Trace.from_sessions([make_session()], horizon=7 * SECONDS_PER_DAY)
        assert trace.num_days == 7

    def test_horizon_shorter_than_sessions_rejected(self):
        with pytest.raises(ValueError):
            Trace.from_sessions([make_session(start=0, duration=7200.0)], horizon=3600.0)

    def test_empty_trace(self):
        trace = Trace.from_sessions([])
        assert len(trace) == 0
        assert trace.num_days == 1
        assert trace.total_bits() == 0.0

    def test_distinct_ids(self):
        trace = Trace.from_sessions(
            [
                make_session(session_id=0, user_id=5, content_id="b"),
                make_session(session_id=1, user_id=3, content_id="a"),
                make_session(session_id=2, user_id=5, content_id="a"),
            ]
        )
        assert trace.user_ids == [3, 5]
        assert trace.content_ids == ["a", "b"]

    def test_for_content_filters(self):
        trace = Trace.from_sessions(
            [
                make_session(session_id=0, content_id="a"),
                make_session(session_id=1, content_id="b"),
            ]
        )
        sub = trace.for_content("a")
        assert len(sub) == 1
        assert sub.horizon == trace.horizon

    def test_for_isp_filters(self):
        trace = Trace.from_sessions(
            [
                make_session(session_id=0, isp="ISP-1"),
                make_session(session_id=1, isp="ISP-2"),
            ]
        )
        assert len(trace.for_isp("ISP-2")) == 1
        assert trace.isps == ["ISP-1", "ISP-2"]

    def test_between_uses_overlap(self):
        trace = Trace.from_sessions(
            [
                make_session(session_id=0, start=0.0, duration=100.0),
                make_session(session_id=1, start=500.0, duration=100.0),
            ]
        )
        assert len(trace.between(50.0, 60.0)) == 1
        assert len(trace.between(0.0, 1000.0)) == 2

    def test_between_rejects_empty_interval(self):
        trace = Trace.from_sessions([make_session()])
        with pytest.raises(ValueError):
            trace.between(10.0, 10.0)

    def test_totals(self):
        trace = Trace.from_sessions(
            [
                make_session(session_id=0, duration=100.0, bitrate=1e6),
                make_session(session_id=1, duration=200.0, bitrate=2e6),
            ]
        )
        assert trace.total_bits() == pytest.approx(100 * 1e6 + 200 * 2e6)
        assert trace.total_watch_seconds() == pytest.approx(300.0)

    def test_mean_concurrency(self):
        # 86400 watch-seconds over a 1-day horizon = 1 concurrent viewer.
        trace = Trace.from_sessions(
            [make_session(session_id=i, start=0.0, duration=8640.0) for i in range(10)],
            horizon=SECONDS_PER_DAY,
        )
        assert trace.mean_concurrency() == pytest.approx(1.0)


class TestDerivedViewCaching:
    """user_ids / content_ids / isps / total_bits() are O(n) scans; they
    must run once per trace, not once per access."""

    def make_trace(self):
        return Trace.from_sessions(
            [
                make_session(session_id=0, duration=100.0, bitrate=1e6),
                make_session(session_id=1, duration=200.0, bitrate=2e6),
            ]
        )

    def test_id_views_cached(self):
        trace = self.make_trace()
        assert trace.user_ids is trace.user_ids
        assert trace.content_ids is trace.content_ids
        assert trace.isps is trace.isps

    def test_repeated_total_bits_does_not_rescan(self, monkeypatch):
        trace = self.make_trace()
        calls = []
        original = Session.bits_watched

        def counting(self):
            calls.append(1)
            return original.__get__(self)

        monkeypatch.setattr(Session, "bits_watched", property(counting))
        first = trace.total_bits()
        scans = len(calls)
        assert scans == len(trace)
        assert trace.total_bits() == first
        assert len(calls) == scans  # cached: no further per-session work

    def test_caches_are_per_instance(self):
        trace = self.make_trace()
        assert trace.user_ids == [1]
        other = Trace.from_sessions([make_session(session_id=5, user_id=9)])
        assert other.user_ids == [9]

    def test_cached_values_correct(self):
        trace = self.make_trace()
        assert trace.total_bits() == pytest.approx(100 * 1e6 + 200 * 2e6)
        assert trace.content_ids == ["item-a"]
