"""docs/STORE_FORMAT.md round-trips: the spec is sufficient to write.

``write_store_from_the_doc`` below is a third-party writer implemented
from docs/STORE_FORMAT.md **alone** -- plain ``struct`` and ``json``,
no imports from :mod:`repro.trace.store` (the reader side only comes in
to verify the file).  If the doc drifts from the code, either the
round-trip here breaks (doc describes bytes the reader rejects) or the
doc-content assertions break (code changed under an unchanged doc).
"""

import json
import struct
from pathlib import Path

import pytest

from repro.trace.store import STORE_VERSION, StoreCorruptionError, StoreReader

DOC = Path(__file__).resolve().parents[2] / "docs" / "STORE_FORMAT.md"

# ----------------------------------------------------------------------
# The writer, transcribed from the doc (and nothing else)
# ----------------------------------------------------------------------

#: Each session a caller supplies: (session_id, user_id, content_id,
#: start, duration, bitrate, isp, pop, exchange, device).
ROWS = [
    (1, 10, "east/c00000.g0", 0.0, 1800.0, 5.0e6, "east/isp-0", 0, 3, "tv"),
    (2, 11, "east/c00001.g0", 60.5, 900.25, 2.5e6, "east/isp-1", 1, 7, "mobile"),
    (3, 10, "east/c00000.g0", 120.0, 3600.0, 8.0e6, "east/isp-0", 0, 3, "desktop"),
    (4, 12, "west/c00002.g0", 0.125, 42.5, 1.0e6, "east/isp-1", 2, 1, "tv"),
]
HORIZON = 86400.0


def write_store_from_the_doc(path, rows, horizon):
    """Write a ``.store`` file following only docs/STORE_FORMAT.md."""
    header = struct.pack("<4sI", b"RPSS", 1)
    record = struct.Struct("<qqIdddHIIH")

    def interner():
        table = {}

        def ref(value):
            # "order-preserving first-encounter": first distinct value
            # appended gets ref 0, the second ref 1, ...
            if value not in table:
                table[value] = len(table)
            return table[value]

        return table, ref

    content_table, content_ref = interner()
    isp_table, isp_ref = interner()
    device_table, device_ref = interner()

    body = bytearray(header)
    for sid, uid, content, start, dur, rate, isp, pop, exch, device in rows:
        body += record.pack(
            sid,
            uid,
            content_ref(content),
            start,
            dur,
            rate,
            isp_ref(isp),
            pop,
            exch,
            device_ref(device),
        )

    footer_offset = 8 + len(rows) * 56
    assert footer_offset == len(body)  # doc: footer starts after records
    footer = json.dumps(
        {
            "version": 1,
            "records": len(rows),
            "horizon": horizon,
            "content": list(content_table),
            "isp": list(isp_table),
            "device": list(device_table),
        }
    ).encode("utf-8")
    body += footer
    body += struct.pack("<Q4s", footer_offset, b"RPSS")
    path.write_bytes(bytes(body))
    return path


# ----------------------------------------------------------------------
# Round-trip: StoreReader accepts the third-party file byte-for-byte
# ----------------------------------------------------------------------


@pytest.fixture
def store(tmp_path):
    return write_store_from_the_doc(tmp_path / "thirdparty.store", ROWS, HORIZON)


def test_reader_accepts_doc_written_store(store):
    with StoreReader(store) as reader:
        assert len(reader) == len(ROWS)
        assert reader.horizon == HORIZON
        sessions = list(reader.iter_sessions())
    assert len(sessions) == len(ROWS)
    for session, row in zip(sessions, ROWS):
        sid, uid, content, start, dur, rate, isp, pop, exch, device = row
        assert session.session_id == sid
        assert session.user_id == uid
        assert session.content_id == content
        # doc: doubles round-trip bit-for-bit, so exact comparison.
        assert session.start == start
        assert session.duration == dur
        assert session.bitrate == rate
        assert session.attachment.isp == isp
        assert session.attachment.pop == pop
        assert session.attachment.exchange == exch
        assert session.device == device


def test_doc_written_store_is_simulatable(store):
    from repro.sim import SimulationConfig, Simulator

    with StoreReader(store) as reader:
        result = Simulator(SimulationConfig()).run_stream(
            reader.iter_sessions(), reader.horizon
        )
    assert result.total.sessions == len(ROWS)
    assert result.total.demanded_bits > 0


# ----------------------------------------------------------------------
# Corruption: violating the doc's invariants must be rejected
# ----------------------------------------------------------------------


def corrupt(store, tmp_path, mutate):
    data = bytearray(store.read_bytes())
    mutate(data)
    bad = tmp_path / "bad.store"
    bad.write_bytes(bytes(data))
    return bad


@pytest.mark.parametrize(
    "mutate",
    [
        lambda d: d.__setitem__(slice(0, 4), b"XXXX"),  # header magic
        lambda d: d.__setitem__(slice(4, 8), struct.pack("<I", 99)),  # version
        lambda d: d.__setitem__(slice(-4, None), b"XXXX"),  # tail magic
        lambda d: d.__setitem__(  # footer_offset != 8 + records*56
            slice(-12, -4), struct.pack("<Q", 8)
        ),
    ],
    ids=["header-magic", "version", "tail-magic", "offset-mismatch"],
)
def test_reader_rejects_doc_violations(store, tmp_path, mutate):
    bad = corrupt(store, tmp_path, mutate)
    with pytest.raises(StoreCorruptionError):
        with StoreReader(bad) as reader:
            list(reader.iter_sessions())


# ----------------------------------------------------------------------
# Doc content: the normative constants must appear verbatim
# ----------------------------------------------------------------------


def test_doc_states_the_normative_constants():
    text = DOC.read_text()
    assert '"<qqIdddHIIH"' in text  # record struct
    assert "56 bytes" in text  # record size
    assert '"<4sI"' in text and '"<Q4s"' in text  # header and tail structs
    assert 'b"RPSS"' in text  # magic
    assert f"STORE_VERSION = {STORE_VERSION}" in text  # version in sync
    # Footer keys, exactly as the reader expects them.
    for key in ("version", "records", "horizon", "content", "isp", "device"):
        assert f'"{key}"' in text
